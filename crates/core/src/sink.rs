//! Typed event sinks: where a monitor's [`QoeEvent`]s go.
//!
//! An [`EventSink`] observes the event stream in order —
//! [`EventSink::on_event`] per event, one [`EventSink::flush`] at end of
//! run — and is the output half of the pluggable I/O layer (the input
//! half is [`crate::source`]). A [`crate::runner::MonitorRunner`] fans
//! every drained event out to all of its configured sinks; [`Tee`] does
//! the same as a standalone combinator so sink trees compose.
//!
//! Provided sinks:
//!
//! * [`JsonLinesSink`] — one compact JSON object per event, the log
//!   shipper / dashboard feed format;
//! * [`CallbackSink`] — a closure per event, for ad-hoc consumers;
//! * [`ChannelSink`] — a bounded channel subscriber: the receiver can
//!   live on another thread, and the bound is the backpressure;
//! * [`AlertSink`] — frame-rate threshold alerts as JSON lines (lifted
//!   out of the `monitor` CLI);
//! * [`SummarySink`] — end-of-run per-flow rollup table (windows, mean
//!   frame rate / bitrate, method, shed events);
//! * [`Tee`] — fan-out to any number of child sinks, in order.
//!
//! ```
//! use vcaml::api::{EstimationMethod, MonitorBuilder};
//! use vcaml::runner::MonitorRunner;
//! use vcaml::sink::ChannelSink;
//! use vcaml::source::SyntheticSource;
//! use vcaml::Method;
//! use vcaml_rtp::VcaKind;
//!
//! // A bounded channel subscriber receives every event the run produced.
//! let (subscriber, rx) = ChannelSink::bounded(65_536);
//! let report = MonitorRunner::new(
//!     MonitorBuilder::new(VcaKind::Teams)
//!         .method(EstimationMethod::Fixed(Method::IpUdpHeuristic)),
//! )
//! .source(SyntheticSource::new(VcaKind::Teams, 2, 1, 3))
//! .sink(subscriber)
//! .run();
//! let lines: Vec<String> = rx.try_iter().map(|e| e.to_json_line()).collect();
//! assert!(report.events > 0);
//! assert_eq!(lines.len() as u64, report.events, "one JSON line per event");
//! ```

use crate::api::QoeEvent;
use crate::bus::AlertThresholds;
use crate::engine::WindowReport;
use crate::pipeline::Method;
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use vcaml_netpkt::FlowKey;

/// An ordered observer of a monitor's event stream.
///
/// Sinks run on the draining thread (the runner's event loop), so they
/// need no synchronization of their own; a slow sink slows the drain,
/// which is exactly the backpressure contract of the bounded queue.
pub trait EventSink {
    /// Observes one shared event. Events arrive in drain order, which
    /// preserves per-flow order; the `Arc` is the delivery currency of
    /// the whole output path, so a sink that forwards the event
    /// elsewhere ([`ChannelSink`], a custom broadcaster) clones the
    /// `Arc` — never the event.
    fn on_event(&mut self, event: &Arc<QoeEvent>);

    /// End of run: write totals, flush buffers, release resources.
    /// Called exactly once by the runner after the final event.
    fn flush(&mut self) {}

    /// Whether this sink will never observe anything again (its
    /// consumer went away). A bus may drop closed sinks; most sinks are
    /// never closed, so the default is `false`. [`ChannelSink`] reports
    /// a dropped receiver here — how the daemon's `SUBSCRIBE` streams
    /// get reclaimed after the connection dies.
    fn is_closed(&self) -> bool {
        false
    }
}

impl EventSink for Box<dyn EventSink> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        (**self).on_event(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }

    fn is_closed(&self) -> bool {
        (**self).is_closed()
    }
}

impl EventSink for Box<dyn EventSink + Send> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        (**self).on_event(event);
    }

    fn flush(&mut self) {
        (**self).flush();
    }

    fn is_closed(&self) -> bool {
        (**self).is_closed()
    }
}

/// One compact JSON object per event, newline-delimited — the format
/// dashboards and log shippers consume ([`QoeEvent::to_json_line`]).
pub struct JsonLinesSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Writes JSON lines to `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer }
    }

    /// Returns the inner writer (tests that assert on the bytes).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for JsonLinesSink<W> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
        writeln!(self.writer, "{}", event.to_json_line()).expect("event sink write");
    }

    fn flush(&mut self) {
        self.writer.flush().expect("event sink flush"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
    }
}

/// A closure per event — the ad-hoc consumer shape.
pub struct CallbackSink<F: FnMut(&QoeEvent)> {
    callback: F,
}

impl<F: FnMut(&QoeEvent)> CallbackSink<F> {
    /// Calls `callback` for every event.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(&QoeEvent)> EventSink for CallbackSink<F> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        (self.callback)(event);
    }
}

/// Counts events without looking at them — benches and smoke tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    events: u64,
}

impl CountingSink {
    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }
}

impl EventSink for CountingSink {
    fn on_event(&mut self, _event: &Arc<QoeEvent>) {
        self.events += 1;
    }
}

/// A bounded channel subscriber: shared events go onto a
/// [`sync_channel`] whose receiver can live on another thread. Each
/// delivery clones the `Arc`, never the event — N channel subscribers
/// on one stream share one allocation per event (the ROADMAP PR 4
/// fan-out cost, deleted).
///
/// The sink never blocks the drain loop: a full channel *sheds* the
/// event and counts it ([`ChannelSink::overflowed`]). Blocking would be
/// a deadlock trap for the common drain-after-run pattern — the runner's
/// event loop is the monitor queue's only consumer, so parking it
/// against a subscriber that is only read after `run()` returns would
/// hang the whole pipeline. Size the channel for the run (events are
/// small) or drain the receiver concurrently for lossless delivery. A
/// dropped receiver quietly detaches the sink (no panic mid-run).
pub struct ChannelSink {
    tx: SyncSender<Arc<QoeEvent>>,
    detached: bool,
    overflowed: Arc<AtomicU64>,
}

impl ChannelSink {
    /// A sink/receiver pair with an event bound of `capacity`.
    pub fn bounded(capacity: usize) -> (Self, Receiver<Arc<QoeEvent>>) {
        assert!(capacity >= 1, "zero channel capacity");
        let (tx, rx) = sync_channel(capacity);
        (
            ChannelSink {
                tx,
                detached: false,
                overflowed: Arc::new(AtomicU64::new(0)),
            },
            rx,
        )
    }

    /// Whether the receiver has gone away (events are discarded).
    pub fn is_detached(&self) -> bool {
        self.detached
    }

    /// Events shed because the channel was full when they arrived.
    pub fn overflowed(&self) -> u64 {
        self.overflowed.load(Relaxed)
    }

    /// A shared view of the overflow counter, readable from the
    /// receiving side after the sink itself moved onto the drain thread
    /// (the daemon reports per-subscriber shed counts through this).
    pub fn overflow_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.overflowed)
    }
}

impl EventSink for ChannelSink {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        if self.detached {
            return;
        }
        match self.tx.try_send(Arc::clone(event)) {
            Ok(()) => {}
            Err(std::sync::mpsc::TrySendError::Full(_)) => {
                self.overflowed.fetch_add(1, Relaxed);
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => self.detached = true,
        }
    }

    fn is_closed(&self) -> bool {
        self.detached
    }
}

/// Frame rate of a report, as alerting sees it: heuristic estimate or
/// attached-model prediction. `None` for feature-only reports (ML
/// methods without a model carry no rate signal).
pub fn report_fps(report: &WindowReport) -> Option<f64> {
    report.estimate.map(|e| e.fps).or(report.model_fps)
}

/// Threshold alerting on inferred QoE — the operator loop of the
/// paper's §1, as a composable sink instead of CLI-private code. Emits
/// one JSON line per finalized window that degrades past the live
/// [`AlertThresholds`] bars: frame rate below the fps floor, bitrate
/// below the kbps floor, or bitrate below the resolution-class floor
/// (`metric` names which bar tripped). Provisional (max-lag flush)
/// snapshots are documented lower bounds and never alerted on.
pub struct AlertSink<W: Write> {
    writer: W,
    thresholds: AlertThresholds,
    alerts: u64,
}

impl<W: Write> AlertSink<W> {
    /// Alerts to `writer` when a window's frame rate drops below
    /// `fps_threshold` (a private, fixed bar).
    pub fn new(writer: W, fps_threshold: f64) -> Self {
        AlertSink::with_thresholds(writer, AlertThresholds::with_fps(fps_threshold))
    }

    /// Alerts against shared, live [`AlertThresholds`] — pass a
    /// [`MonitorHandle::alert_thresholds`](crate::control::MonitorHandle::alert_thresholds)
    /// and the bar is retunable mid-run through the handle.
    pub fn with_thresholds(writer: W, thresholds: AlertThresholds) -> Self {
        AlertSink {
            writer,
            thresholds,
            alerts: 0,
        }
    }

    /// Alerts emitted so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }
}

impl<W: Write> EventSink for AlertSink<W> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        let Some(flow) = event.flow() else { return };
        let bar = self.thresholds.bar();
        for report in event.final_reports() {
            if let Some(fps) = report_fps(report) {
                if fps < bar.fps {
                    self.alerts += 1;
                    writeln!(
                        self.writer,
                        "{{\"type\":\"alert\",\"metric\":\"fps\",\"flow\":\"{flow}\",\"window\":{},\"fps\":{fps:.1},\"threshold\":{}}}",
                        report.window, bar.fps
                    )
                    .expect("alert sink write"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
                }
            }
            if let Some(est) = &report.estimate {
                let kbps = est.bitrate_kbps;
                if kbps < bar.min_kbps {
                    self.alerts += 1;
                    writeln!(
                        self.writer,
                        "{{\"type\":\"alert\",\"metric\":\"bitrate\",\"flow\":\"{flow}\",\"window\":{},\"kbps\":{kbps:.0},\"threshold\":{}}}",
                        report.window, bar.min_kbps
                    )
                    .expect("alert sink write"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
                } else if let Some(height) = bar.res_height {
                    if kbps < bar.res_min_kbps {
                        self.alerts += 1;
                        writeln!(
                            self.writer,
                            "{{\"type\":\"alert\",\"metric\":\"resolution\",\"flow\":\"{flow}\",\"window\":{},\"kbps\":{kbps:.0},\"floor_height\":{height},\"threshold\":{}}}",
                            report.window, bar.res_min_kbps
                        )
                        .expect("alert sink write"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
                    }
                }
            }
        }
    }

    fn flush(&mut self) {
        self.writer.flush().expect("alert sink flush"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
    }
}

/// One flow's rollup inside a [`Summary`].
#[derive(Debug, Clone, Default)]
pub struct FlowSummary {
    /// Finalized windows observed.
    pub windows: u64,
    /// Sum of frame-rate signals over windows that carried one.
    fps_sum: f64,
    /// Windows that carried a frame-rate signal.
    fps_n: u64,
    /// Sum of heuristic bitrate estimates over windows that carried one.
    kbps_sum: f64,
    /// Windows that carried a bitrate estimate.
    kbps_n: u64,
    /// Method of the most recent report (changes mid-flow on re-probe).
    pub method: Option<Method>,
    /// Events shed for this flow by a `DropOldest` queue.
    pub shed: u64,
    /// Whether the flow was sealed (idle eviction or end of stream).
    pub sealed: bool,
}

impl FlowSummary {
    /// Mean frame rate over windows that carried a signal.
    pub fn mean_fps(&self) -> Option<f64> {
        (self.fps_n > 0).then(|| self.fps_sum / self.fps_n as f64)
    }

    /// Mean bitrate (kbps) over windows that carried an estimate.
    pub fn mean_kbps(&self) -> Option<f64> {
        (self.kbps_n > 0).then(|| self.kbps_sum / self.kbps_n as f64)
    }
}

/// The aggregation state behind [`SummarySink`], usable directly when a
/// program wants the rollups instead of the rendered table.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    flows: BTreeMap<FlowKey, FlowSummary>,
    /// Packets dropped at parse time.
    pub parse_drops: u64,
    /// Events shed by the bounded queue (all flows + unattributed).
    pub events_shed: u64,
}

impl Summary {
    /// Folds one event into the rollups.
    pub fn observe(&mut self, event: &QoeEvent) {
        match event {
            QoeEvent::ParseDrop { .. } => self.parse_drops += 1,
            QoeEvent::Dropped { count, per_flow } => {
                self.events_shed += count;
                for (flow, n) in per_flow {
                    self.flows.entry(*flow).or_default().shed += n;
                }
            }
            QoeEvent::FlowOpened { flow, .. } => {
                self.flows.entry(*flow).or_default();
            }
            QoeEvent::WindowReport { flow, .. } | QoeEvent::FlowEvicted { flow, .. } => {
                let entry = self.flows.entry(*flow).or_default();
                if matches!(event, QoeEvent::FlowEvicted { .. }) {
                    entry.sealed = true;
                }
                for report in event.final_reports() {
                    entry.windows += 1;
                    entry.method = Some(report.method);
                    if let Some(fps) = report_fps(report) {
                        entry.fps_sum += fps;
                        entry.fps_n += 1;
                    }
                    if let Some(est) = &report.estimate {
                        entry.kbps_sum += est.bitrate_kbps;
                        entry.kbps_n += 1;
                    }
                }
            }
        }
    }

    /// Per-flow rollups, in canonical flow order.
    pub fn flows(&self) -> impl Iterator<Item = (&FlowKey, &FlowSummary)> {
        self.flows.iter()
    }

    /// Renders the rollup table.
    pub fn write_table(&self, out: &mut impl Write) -> std::io::Result<()> {
        writeln!(
            out,
            "{:<44} {:<17} {:>7} {:>9} {:>10} {:>6}",
            "flow", "method", "windows", "mean_fps", "mean_kbps", "shed"
        )?;
        for (flow, s) in &self.flows {
            let fps = s
                .mean_fps()
                .map_or_else(|| "-".into(), |v| format!("{v:.1}"));
            let kbps = s
                .mean_kbps()
                .map_or_else(|| "-".into(), |v| format!("{v:.0}"));
            writeln!(
                out,
                "{:<44} {:<17} {:>7} {:>9} {:>10} {:>6}",
                flow.to_string(),
                s.method.map_or("-", |m| m.name()),
                s.windows,
                fps,
                kbps,
                s.shed
            )?;
        }
        let windows: u64 = self.flows.values().map(|s| s.windows).sum();
        writeln!(
            out,
            "total: {} flows, {} windows, {} parse drops, {} events shed",
            self.flows.len(),
            windows,
            self.parse_drops,
            self.events_shed
        )
    }
}

/// End-of-run per-flow rollup table: windows, mean frame rate / bitrate,
/// method, and shed-event counts per flow (the per-flow drop breakdown
/// of [`QoeEvent::Dropped`], surfaced for operators). The table renders
/// on [`EventSink::flush`], i.e. once, after the last event.
pub struct SummarySink<W: Write> {
    summary: Summary,
    writer: W,
    written: bool,
}

impl<W: Write> SummarySink<W> {
    /// Renders the end-of-run table to `writer`.
    pub fn new(writer: W) -> Self {
        SummarySink {
            summary: Summary::default(),
            writer,
            written: false,
        }
    }

    /// The rollups accumulated so far.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

impl<W: Write> EventSink for SummarySink<W> {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        self.summary.observe(event);
    }

    fn flush(&mut self) {
        if !self.written {
            self.written = true;
            self.summary
                .write_table(&mut self.writer)
                .expect("summary sink write"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
        }
        self.writer.flush().expect("summary sink flush"); // lint: allow(no-unwrap-in-lib) -- EventSink is infallible by contract; a dead sink must abort, not drop telemetry
    }
}

/// Fan-out combinator: every event goes to every child, in the order the
/// children were added, so multiple consumers observe byte-identical
/// event sequences (a tested invariant).
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Box<dyn EventSink + Send>>,
}

impl Tee {
    /// An empty tee; add children with [`Tee::with`].
    pub fn new() -> Self {
        Tee::default()
    }

    /// Adds a child sink (builder-style). Children are `Send` so a tee
    /// can ride a spawned runner onto its supervisor thread.
    pub fn with(mut self, sink: impl EventSink + Send + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Number of child sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no children.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for Tee {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn flow() -> FlowKey {
        use std::net::{IpAddr, Ipv4Addr};
        FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            5001,
            17,
        )
        .0
    }

    fn opened(us: i64) -> Arc<QoeEvent> {
        Arc::new(QoeEvent::FlowOpened {
            flow: flow(),
            ts: Timestamp::from_micros(us),
        })
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_event(&opened(1));
        sink.on_event(&opened(2));
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"flow_opened\"")));
    }

    #[test]
    fn tee_fans_out_in_order_to_every_child() {
        let (a, b) = (SharedBuf::default(), SharedBuf::default());
        let mut tee = Tee::new()
            .with(JsonLinesSink::new(a.clone()))
            .with(JsonLinesSink::new(b.clone()));
        assert_eq!(tee.len(), 2);
        for i in 0..4 {
            tee.on_event(&opened(i));
        }
        tee.flush();
        let (a, b) = (a.0.lock().unwrap(), b.0.lock().unwrap());
        assert!(!a.is_empty());
        assert_eq!(*a, *b, "every child sees byte-identical output");
    }

    /// A `Write` handle tests can keep after giving a sink ownership.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf poisoned").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn channel_sink_delivers_and_detaches() {
        let (mut sink, rx) = ChannelSink::bounded(4);
        sink.on_event(&opened(1));
        assert_eq!(rx.recv().expect("delivered").tag(), "flow_opened");
        drop(rx);
        sink.on_event(&opened(2));
        assert!(sink.is_detached(), "dropped receiver detaches the sink");
        sink.on_event(&opened(3)); // no panic once detached
    }

    #[test]
    fn channel_sink_sheds_instead_of_blocking_when_full() {
        let (mut sink, rx) = ChannelSink::bounded(2);
        for i in 0..5 {
            sink.on_event(&opened(i)); // must never park the drain thread
        }
        assert_eq!(sink.overflowed(), 3, "exact shed count");
        assert_eq!(rx.try_iter().count(), 2, "the bound held");
    }

    #[test]
    fn summary_counts_sheds_and_drops() {
        let mut summary = Summary::default();
        summary.observe(&opened(1));
        summary.observe(&QoeEvent::Dropped {
            count: 5,
            per_flow: vec![(flow(), 4)],
        });
        summary.observe(&QoeEvent::ParseDrop {
            ts: Timestamp::from_micros(2),
            reason: crate::api::ParseDropReason::NotUdp,
        });
        assert_eq!(summary.events_shed, 5);
        assert_eq!(summary.parse_drops, 1);
        let (_, s) = summary.flows().next().expect("flow tracked");
        assert_eq!(s.shed, 4);
        let mut table = Vec::new();
        summary.write_table(&mut table).expect("render");
        let text = String::from_utf8(table).expect("utf8");
        assert!(text.contains("total: 1 flows"));
        assert!(text.contains("5 events shed"));
    }
}
