//! The monitor-side trace model: what a passive observer has (timestamps,
//! sizes, and — for the RTP baselines — parsed RTP headers), plus the
//! ground-truth rows used for training and evaluation.
//!
//! ```
//! use vcaml::{Trace, TracePacket};
//! use vcaml_netpkt::Timestamp;
//! use vcaml_rtp::{PayloadMap, RtpHeader, VcaKind};
//!
//! let pkt = |ms: i64, size: u16, pt: Option<u8>| TracePacket {
//!     ts: Timestamp::from_millis(ms),
//!     size,
//!     rtp: pt.map(|pt| RtpHeader::basic(pt, 0, 0, 1, false)),
//!     truth_media: None,
//! };
//! let trace = Trace {
//!     vca: VcaKind::Teams,
//!     payload_map: PayloadMap::lab(VcaKind::Teams),
//!     packets: vec![
//!         pkt(0, 1_100, Some(102)), // video payload type
//!         pkt(5, 150, Some(111)),   // audio
//!         pkt(9, 80, None),         // not RTP at all
//!     ],
//!     truth: vec![],
//!     duration_secs: 1,
//! };
//! // Payload-type classification is how the RTP baselines see media.
//! assert_eq!(trace.rtp_video_packets().count(), 1);
//! // No ground-truth rows yet → incomplete by the paper's §4.1 filter.
//! assert!(!trace.is_complete());
//! ```

use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;
use vcaml_rtp::{MediaKind, PayloadMap, RtpHeader, VcaKind};

/// One captured packet, as the inference methods see it.
///
/// `rtp` is the parsed RTP header when the payload parses as RTP (used
/// only by the RTP baselines); `truth_media` is simulator ground truth
/// used exclusively for evaluating media classification, never as a model
/// input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePacket {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// IP total length in bytes.
    pub size: u16,
    /// Parsed RTP header, if the packet is RTP.
    pub rtp: Option<RtpHeader>,
    /// Ground-truth media class (evaluation only).
    pub truth_media: Option<MediaKind>,
}

/// One second of ground-truth QoE (a `webrtc-internals` row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthRow {
    /// Second index from call start.
    pub second: i64,
    /// Received video bitrate, kbps.
    pub bitrate_kbps: f64,
    /// Decoded frames per second.
    pub fps: f64,
    /// Frame jitter over decoded frames, milliseconds.
    pub frame_jitter_ms: f64,
    /// Dominant frame height.
    pub height: u32,
}

/// A full captured session with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Which VCA produced the session.
    pub vca: VcaKind,
    /// Payload-type mapping in force (lab vs real-world differ, §5.2).
    pub payload_map: PayloadMap,
    /// Captured packets in arrival order.
    pub packets: Vec<TracePacket>,
    /// Per-second ground truth.
    pub truth: Vec<TruthRow>,
    /// Call duration in seconds.
    pub duration_secs: u32,
}

impl Trace {
    /// Packets whose RTP payload type marks them as primary video — the
    /// media classification used by the RTP baselines (§3.3).
    pub fn rtp_video_packets(&self) -> impl Iterator<Item = &TracePacket> {
        self.packets.iter().filter(move |p| {
            p.rtp.is_some_and(|h| {
                self.payload_map.classify(h.payload_type) == Some(MediaKind::Video)
            })
        })
    }

    /// Packets on the retransmission stream, by payload type.
    pub fn rtp_rtx_packets(&self) -> impl Iterator<Item = &TracePacket> {
        self.packets.iter().filter(move |p| {
            p.rtp.is_some_and(|h| {
                self.payload_map.classify(h.payload_type) == Some(MediaKind::VideoRtx)
            })
        })
    }

    /// Sanity check used by dataset builders: the paper filters out
    /// sessions whose WebRTC logs cover fewer seconds than the call
    /// (§4.1).
    pub fn is_complete(&self) -> bool {
        self.truth.len() as u32 >= self.duration_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ms: i64, size: u16, pt: Option<u8>) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_millis(ms),
            size,
            rtp: pt.map(|pt| RtpHeader::basic(pt, 0, 0, 1, false)),
            truth_media: None,
        }
    }

    fn trace(packets: Vec<TracePacket>) -> Trace {
        Trace {
            vca: VcaKind::Teams,
            payload_map: PayloadMap::lab(VcaKind::Teams),
            packets,
            truth: vec![],
            duration_secs: 0,
        }
    }

    #[test]
    fn pt_classification_splits_streams() {
        let t = trace(vec![
            pkt(0, 1000, Some(102)),
            pkt(1, 300, Some(103)),
            pkt(2, 150, Some(111)),
            pkt(3, 80, None),
        ]);
        assert_eq!(t.rtp_video_packets().count(), 1);
        assert_eq!(t.rtp_rtx_packets().count(), 1);
    }

    #[test]
    fn completeness_check() {
        let mut t = trace(vec![]);
        t.duration_secs = 3;
        t.truth = vec![
            TruthRow {
                second: 0,
                bitrate_kbps: 0.0,
                fps: 0.0,
                frame_jitter_ms: 0.0,
                height: 0
            };
            2
        ];
        assert!(!t.is_complete());
        t.truth.push(t.truth[0]);
        assert!(t.is_complete());
    }
}
