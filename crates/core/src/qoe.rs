//! QoE estimation from a reconstructed frame sequence (§3.2.1):
//!
//! * **bitrate** — total frame bits landing in the window, divided by the
//!   window length;
//! * **frame rate** — frames whose end time falls in the window, per
//!   second;
//! * **frame jitter** — standard deviation of consecutive frame-end gaps
//!   within the window.

use crate::frames::Frame;
use serde::{Deserialize, Serialize};

/// Per-window heuristic QoE estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeEstimate {
    /// Estimated video bitrate, kbps.
    pub bitrate_kbps: f64,
    /// Estimated frames per second.
    pub fps: f64,
    /// Estimated frame jitter, milliseconds.
    pub frame_jitter_ms: f64,
}

/// Buckets frames by end time into `n_windows` windows of `window_secs`
/// seconds and estimates the three metrics in each.
pub fn estimate_windows(frames: &[Frame], n_windows: usize, window_secs: u32) -> Vec<QoeEstimate> {
    assert!(window_secs > 0, "zero window");
    let w_us = i64::from(window_secs) * 1_000_000;
    let mut per_window: Vec<Vec<&Frame>> = vec![Vec::new(); n_windows];
    for f in frames {
        let idx = f.end_ts.as_micros().div_euclid(w_us);
        if idx >= 0 && (idx as usize) < n_windows {
            per_window[idx as usize].push(f);
        }
    }
    per_window
        .iter()
        .map(|frames| {
            let w = f64::from(window_secs);
            let bits: f64 = frames.iter().map(|f| f.size_bytes as f64 * 8.0).sum();
            let fps = frames.len() as f64 / w;
            let jitter = if frames.len() >= 3 {
                let gaps: Vec<f64> = frames
                    .windows(2)
                    .map(|p| (p[1].end_ts - p[0].end_ts).as_millis_f64())
                    .collect();
                stddev(&gaps)
            } else {
                0.0
            };
            QoeEstimate { bitrate_kbps: bits / w / 1000.0, fps, frame_jitter_ms: jitter }
        })
        .collect()
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn frame(end_ms: i64, size: usize) -> Frame {
        Frame {
            start_ts: Timestamp::from_millis(end_ms - 1),
            end_ts: Timestamp::from_millis(end_ms),
            size_bytes: size,
            n_packets: 1,
            rtp_ts: None,
        }
    }

    #[test]
    fn fps_counts_frames_by_end_time() {
        let frames: Vec<Frame> = (0..30).map(|i| frame(i * 33, 1000)).collect();
        let est = estimate_windows(&frames, 2, 1);
        assert_eq!(est.len(), 2);
        // 30 frames at 33 ms: ends 0..957 all in window 0 → 30 fps; the
        // 31st would be at 990.
        assert_eq!(est[0].fps, 30.0);
        assert_eq!(est[1].fps, 0.0);
    }

    #[test]
    fn bitrate_sums_frame_bits() {
        let frames = vec![frame(100, 12_500), frame(200, 12_500)];
        let est = estimate_windows(&frames, 1, 1);
        // 25000 bytes = 200 kbit in 1 s.
        assert_eq!(est[0].bitrate_kbps, 200.0);
    }

    #[test]
    fn jitter_zero_for_regular_frames() {
        let frames: Vec<Frame> = (0..10).map(|i| frame(i * 33, 100)).collect();
        let est = estimate_windows(&frames, 1, 1);
        assert!(est[0].frame_jitter_ms < 1e-9);
    }

    #[test]
    fn jitter_positive_for_irregular_frames() {
        let frames = vec![frame(0, 1), frame(10, 1), frame(90, 1), frame(100, 1)];
        let est = estimate_windows(&frames, 1, 1);
        assert!(est[0].frame_jitter_ms > 20.0);
    }

    #[test]
    fn fewer_than_three_frames_reports_zero_jitter() {
        let frames = vec![frame(0, 1), frame(500, 1)];
        let est = estimate_windows(&frames, 1, 1);
        assert_eq!(est[0].frame_jitter_ms, 0.0);
    }

    #[test]
    fn multi_second_window_normalizes() {
        let frames: Vec<Frame> = (0..20).map(|i| frame(i * 100, 1250)).collect();
        let est = estimate_windows(&frames, 1, 2);
        // 20 frames in 2 s = 10 fps; 25 kB over 2 s = 100 kbps.
        assert_eq!(est[0].fps, 10.0);
        assert_eq!(est[0].bitrate_kbps, 100.0);
    }

    #[test]
    fn frames_outside_range_ignored() {
        let frames = vec![frame(-100, 1), frame(5_000, 1)];
        let est = estimate_windows(&frames, 2, 1);
        assert!(est.iter().all(|e| e.fps == 0.0));
    }
}
