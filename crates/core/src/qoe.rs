//! QoE estimation from a reconstructed frame sequence (§3.2.1):
//!
//! * **bitrate** — total frame bits landing in the window, divided by the
//!   window length;
//! * **frame rate** — frames whose end time falls in the window, per
//!   second;
//! * **frame jitter** — standard deviation of consecutive frame-end gaps
//!   within the window.

use crate::frames::Frame;
use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// Per-window heuristic QoE estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeEstimate {
    /// Estimated video bitrate, kbps.
    pub bitrate_kbps: f64,
    /// Estimated frames per second.
    pub fps: f64,
    /// Estimated frame jitter, milliseconds.
    pub frame_jitter_ms: f64,
}

/// One open window's frames: `(frame id, end, bytes)` per frame.
type WindowFrames = Vec<(u64, Timestamp, usize)>;

/// Spare frame vectors kept for recycling; a handful covers the 1–2
/// windows typically open at once.
const SPARE_POOL: usize = 8;

/// Buckets sealed frames by end time into fixed windows and emits one
/// [`QoeEstimate`] per window, in window order, as soon as the caller
/// declares a window final.
///
/// This is the single implementation of §3.2.1's window estimation: the
/// batch [`estimate_windows`] replays a frame list through it, and the
/// streaming engine offers frames as its assemblers seal them. Frames may
/// be offered out of end-time order (sealing order is not arrival order);
/// each window sorts its few frames at emission.
///
/// Internally the open windows live in a short ordered deque (one or two
/// entries in practice) instead of a tree, and drained windows' frame
/// vectors are recycled through a spare pool — after warmup the offer →
/// drain cycle performs no heap allocation.
#[derive(Debug, Clone)]
pub struct QoeWindower {
    window_us: i64,
    window_secs: f64,
    next_emit: u64,
    /// Open windows in ascending window order: `(window, frames)`.
    open: std::collections::VecDeque<(u64, WindowFrames)>,
    /// Recycled frame vectors (cleared, capacity retained).
    spare: Vec<WindowFrames>,
}

impl QoeWindower {
    /// Creates a windower with the window length in seconds.
    pub fn new(window_secs: u32) -> Self {
        assert!(window_secs > 0, "zero window");
        QoeWindower {
            window_us: i64::from(window_secs) * 1_000_000,
            window_secs: f64::from(window_secs),
            next_emit: 0,
            open: std::collections::VecDeque::new(),
            spare: Vec::new(),
        }
    }

    /// Window index a timestamp falls into (`None` for negative times,
    /// which are outside every window).
    pub fn window_of(&self, ts: Timestamp) -> Option<u64> {
        let idx = ts.as_micros().div_euclid(self.window_us);
        (idx >= 0).then_some(idx as u64)
    }

    /// Offers one sealed frame (`id` in creation order, used to break
    /// end-time ties deterministically).
    // lint: hot_path
    pub fn offer(&mut self, id: u64, frame: &Frame) {
        if let Some(w) = self.window_of(frame.end_ts) {
            debug_assert!(w >= self.next_emit, "frame sealed into an emitted window");
            if w >= self.next_emit {
                let entry = (id, frame.end_ts, frame.size_bytes);
                // Scan from the back: frames overwhelmingly seal into the
                // newest open window.
                for i in (0..self.open.len()).rev() {
                    match self.open[i].0.cmp(&w) {
                        std::cmp::Ordering::Equal => {
                            self.open[i].1.push(entry);
                            return;
                        }
                        std::cmp::Ordering::Less => {
                            let mut frames = self.spare.pop().unwrap_or_default();
                            frames.push(entry);
                            // lint: allow(hot-path-alloc) -- open is bounded by the window lookback and recycles spare buffers; capacity is warmed
                            self.open.insert(i + 1, (w, frames));
                            return;
                        }
                        std::cmp::Ordering::Greater => {}
                    }
                }
                let mut frames = self.spare.pop().unwrap_or_default();
                frames.push(entry);
                self.open.push_front((w, frames));
            }
        }
    }

    /// Emits every window strictly before `safe` (consecutive from the
    /// last emission; windows without frames yield zero estimates).
    pub fn drain_until(&mut self, safe: u64) -> Vec<(u64, QoeEstimate)> {
        let mut out = Vec::new();
        self.drain_until_into(safe, &mut out);
        out
    }

    /// [`Self::drain_until`] appending into a caller-owned buffer — the
    /// allocation-free form the streaming engines use.
    pub fn drain_until_into(&mut self, safe: u64, out: &mut Vec<(u64, QoeEstimate)>) {
        while self.next_emit < safe {
            let w = self.next_emit;
            let estimate = match self.open.front_mut() {
                Some((front, _)) if *front == w => {
                    let (_, mut frames) = self.open.pop_front().expect("front checked"); // lint: allow(no-unwrap-in-lib) -- the while condition just checked the front window exists
                    let e = self.estimate_slice(&mut frames);
                    frames.clear();
                    if self.spare.len() < SPARE_POOL {
                        self.spare.push(frames);
                    }
                    e
                }
                _ => self.empty_estimate(),
            };
            out.push((w, estimate));
            self.next_emit += 1;
        }
    }

    /// Next window index that would be emitted.
    pub fn next_window(&self) -> u64 {
        self.next_emit
    }

    /// Highest window index currently holding an unemitted frame.
    pub fn last_open_window(&self) -> Option<u64> {
        self.open.back().map(|&(w, _)| w)
    }

    /// Anchors the first emitted window (a flow's epoch). Only valid
    /// before anything has been offered or emitted.
    pub fn start_at(&mut self, window: u64) {
        assert!(
            self.next_emit == 0 && self.open.is_empty(),
            "start_at after emission began"
        );
        self.next_emit = window;
    }

    /// Re-anchors emission at `window` across a discontinuity — forward
    /// (a long gap was skipped) or backward (the previous epoch came from
    /// a corrupt first timestamp). Only valid once pending windows have
    /// been drained.
    pub fn skip_to(&mut self, window: u64) {
        assert!(self.open.is_empty(), "skip_to with pending frames");
        self.next_emit = window;
    }

    /// The estimate an empty window produces.
    pub fn empty_estimate(&self) -> QoeEstimate {
        QoeEstimate {
            bitrate_kbps: 0.0,
            fps: 0.0,
            frame_jitter_ms: 0.0,
        }
    }

    /// Estimates a not-yet-final window from the frames sealed into it so
    /// far, without emitting it. More frames may still arrive, so the
    /// result is a lower bound on frame count and bitrate — the
    /// "provisional window" the max-lag flush publishes for dashboards
    /// that prefer freshness over exactness.
    pub fn peek(&self, window: u64) -> QoeEstimate {
        match self.open.iter().find(|&&(w, _)| w == window) {
            Some((_, frames)) => {
                let mut copy = frames.clone();
                self.estimate_slice(&mut copy)
            }
            None => self.empty_estimate(),
        }
    }

    /// Heap bytes currently held (open-window and spare capacity), for
    /// per-flow memory accounting.
    pub fn heap_bytes(&self) -> usize {
        let per = std::mem::size_of::<(u64, Timestamp, usize)>();
        self.open
            .iter()
            .map(|(_, f)| f.capacity() * per)
            .sum::<usize>()
            + self.spare.iter().map(|f| f.capacity() * per).sum::<usize>()
            + self.open.capacity() * std::mem::size_of::<(u64, WindowFrames)>()
    }

    fn estimate_slice(&self, frames: &mut [(u64, Timestamp, usize)]) -> QoeEstimate {
        // End-time order, creation order breaking ties — the same order
        // the batch stable sort produced.
        frames.sort_by_key(|&(id, end, _)| (end, id));
        let bits: f64 = frames.iter().map(|&(_, _, bytes)| bytes as f64 * 8.0).sum();
        let fps = frames.len() as f64 / self.window_secs;
        let jitter = if frames.len() >= 3 {
            // Two Welford-free passes over the gaps: no gap buffer.
            let n = (frames.len() - 1) as f64;
            let mut sum = 0.0;
            for p in frames.windows(2) {
                sum += (p[1].1 - p[0].1).as_millis_f64();
            }
            let mean = sum / n;
            let mut var = 0.0;
            for p in frames.windows(2) {
                var += ((p[1].1 - p[0].1).as_millis_f64() - mean).powi(2);
            }
            (var / n).sqrt()
        } else {
            0.0
        };
        QoeEstimate {
            bitrate_kbps: bits / self.window_secs / 1000.0,
            fps,
            frame_jitter_ms: jitter,
        }
    }
}

/// Buckets frames by end time into `n_windows` windows of `window_secs`
/// seconds and estimates the three metrics in each, by replaying the list
/// through [`QoeWindower`]. Frames ending beyond the last window (or at
/// negative times) are ignored.
pub fn estimate_windows(frames: &[Frame], n_windows: usize, window_secs: u32) -> Vec<QoeEstimate> {
    let mut windower = QoeWindower::new(window_secs);
    for (id, f) in frames.iter().enumerate() {
        if windower
            .window_of(f.end_ts)
            .is_some_and(|w| w < n_windows as u64)
        {
            windower.offer(id as u64, f);
        }
    }
    windower
        .drain_until(n_windows as u64)
        .into_iter()
        .map(|(_, e)| e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn frame(end_ms: i64, size: usize) -> Frame {
        Frame {
            start_ts: Timestamp::from_millis(end_ms - 1),
            end_ts: Timestamp::from_millis(end_ms),
            size_bytes: size,
            n_packets: 1,
            rtp_ts: None,
        }
    }

    #[test]
    fn fps_counts_frames_by_end_time() {
        let frames: Vec<Frame> = (0..30).map(|i| frame(i * 33, 1000)).collect();
        let est = estimate_windows(&frames, 2, 1);
        assert_eq!(est.len(), 2);
        // 30 frames at 33 ms: ends 0..957 all in window 0 → 30 fps; the
        // 31st would be at 990.
        assert_eq!(est[0].fps, 30.0);
        assert_eq!(est[1].fps, 0.0);
    }

    #[test]
    fn bitrate_sums_frame_bits() {
        let frames = vec![frame(100, 12_500), frame(200, 12_500)];
        let est = estimate_windows(&frames, 1, 1);
        // 25000 bytes = 200 kbit in 1 s.
        assert_eq!(est[0].bitrate_kbps, 200.0);
    }

    #[test]
    fn jitter_zero_for_regular_frames() {
        let frames: Vec<Frame> = (0..10).map(|i| frame(i * 33, 100)).collect();
        let est = estimate_windows(&frames, 1, 1);
        assert!(est[0].frame_jitter_ms < 1e-9);
    }

    #[test]
    fn jitter_positive_for_irregular_frames() {
        let frames = vec![frame(0, 1), frame(10, 1), frame(90, 1), frame(100, 1)];
        let est = estimate_windows(&frames, 1, 1);
        assert!(est[0].frame_jitter_ms > 20.0);
    }

    #[test]
    fn fewer_than_three_frames_reports_zero_jitter() {
        let frames = vec![frame(0, 1), frame(500, 1)];
        let est = estimate_windows(&frames, 1, 1);
        assert_eq!(est[0].frame_jitter_ms, 0.0);
    }

    #[test]
    fn multi_second_window_normalizes() {
        let frames: Vec<Frame> = (0..20).map(|i| frame(i * 100, 1250)).collect();
        let est = estimate_windows(&frames, 1, 2);
        // 20 frames in 2 s = 10 fps; 25 kB over 2 s = 100 kbps.
        assert_eq!(est[0].fps, 10.0);
        assert_eq!(est[0].bitrate_kbps, 100.0);
    }

    #[test]
    fn frames_outside_range_ignored() {
        let frames = vec![frame(-100, 1), frame(5_000, 1)];
        let est = estimate_windows(&frames, 2, 1);
        assert!(est.iter().all(|e| e.fps == 0.0));
    }
}
