//! `MonitorRunner`: sources in, one monitor, a subscriber bus out —
//! with a live control plane.
//!
//! The runner ties the pluggable I/O layer together: any number of
//! [`PacketSource`]s feed one [`Monitor`], and every drained
//! [`Arc<QoeEvent>`](crate::api::QoeEvent) is published on an
//! [`EventBus`] to every subscriber whose [`EventFilter`] matches — the
//! same shared allocation for all of them, evaluated once per event on
//! the drain thread, so fan-out never deep-copies and filtered-out
//! subscribers cost nothing. On a threaded monitor each source gets its
//! **own ingest thread with its own ingest port**: the per-packet parse,
//! flow hash, and channel hand-off — the serial section of the parallel
//! monitor — run once per source instead of once per monitor, so ingest
//! scales with sources the way engine work already scales with shard
//! workers. Per-flow packet order within one source is preserved end to
//! end; flows should not span sources.
//!
//! A runner can run two ways:
//!
//! * [`MonitorRunner::run`] — block the calling thread to completion
//!   (batch jobs, tests, benches);
//! * [`MonitorRunner::spawn`] — a supervised background run: the whole
//!   pipeline moves to a supervisor thread and the caller keeps a
//!   [`RunningMonitor`] whose cloneable [`MonitorHandle`] observes and
//!   steers it live — `stats_snapshot()`, `force_flush()`,
//!   `evict_flow()`, alert-threshold retuning, and graceful `stop()`
//!   (ingest ports check the stop flag between packets, flush what they
//!   hold, and the run seals every flow: nothing produced before the
//!   stop is lost).
//!
//! The runner's event loop is the queue's consumer, so the monitor's
//! backpressure semantics hold unchanged: under
//! [`OverflowPolicy::Block`](crate::api::OverflowPolicy) a slow
//! subscriber slows the drain, fills the queue, parks the shard workers,
//! fills the ingest channels, and finally stalls the sources —
//! end-to-end backpressure from sink to source. Under `DropOldest` the
//! subscribers see exact `QoeEvent::Dropped` markers instead.
//!
//! ```
//! use vcaml::api::{EstimationMethod, MonitorBuilder};
//! use vcaml::runner::MonitorRunner;
//! use vcaml::sink::CountingSink;
//! use vcaml::source::SyntheticSource;
//! use vcaml::Method;
//! use vcaml_rtp::VcaKind;
//!
//! // Two synthetic taps, two ingest threads, two shard workers — run in
//! // the background, observed through the handle, then joined.
//! let running = MonitorRunner::new(
//!     MonitorBuilder::new(VcaKind::Teams)
//!         .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
//!         .threads(2),
//! )
//! .source(SyntheticSource::new(VcaKind::Teams, 2, 1, 5))
//! .source(SyntheticSource::new(VcaKind::Teams, 2, 1, 6))
//! .sink(CountingSink::default())
//! .spawn();
//! let handle = running.handle();
//! let report = running.join();
//! assert_eq!(report.sources.len(), 2);
//! assert!(report.sources.iter().all(|s| s.error.is_none()));
//! assert_eq!(report.stats.flows_opened, 2);
//! assert!(report.events > 0);
//! // The handle outlives the run: counters are settled after the join.
//! assert_eq!(handle.stats_snapshot().stats.flows_opened, 2);
//! ```

use crate::api::{IngestPort, Monitor, MonitorBuilder, MonitorStats};
use crate::bus::{EventBus, EventFilter};
use crate::control::MonitorHandle;
use crate::sink::EventSink;
use crate::source::{PacketSource, SourcePacket};
use serde::Serialize;

/// What one source contributed to a run.
#[derive(Debug, Clone, Serialize)]
pub struct SourceReport {
    /// Packets pulled from the source (before parse classification).
    pub packets: u64,
    /// The read error that ended the source early, if any. A source that
    /// errors stops; the run continues with the others.
    pub error: Option<String>,
}

/// The outcome of [`MonitorRunner::run`] (or a joined
/// [`RunningMonitor`]).
#[derive(Debug, Clone, Serialize)]
pub struct RunnerReport {
    /// The monitor's final counters, settled after `finish()` — unlike a
    /// mid-run [`Monitor::stats`] snapshot, nothing is still in flight.
    pub stats: MonitorStats,
    /// Events published to the bus (each event counts once no matter
    /// how many subscribers observed it).
    pub events: u64,
    /// Per-source packet counts and errors, in configuration order.
    pub sources: Vec<SourceReport>,
}

/// Drives N packet sources through one monitor onto an [`EventBus`] of
/// M subscribers.
///
/// Construct with a [`MonitorBuilder`] (the runner builds the monitor)
/// or an already-built [`Monitor`] via [`MonitorRunner::with_monitor`],
/// add sources and subscribers, then [`MonitorRunner::run`] to
/// completion or [`MonitorRunner::spawn`] a supervised background run.
/// See the [module docs](self) for the threading and backpressure
/// model.
pub struct MonitorRunner {
    monitor: Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    bus: EventBus,
}

impl MonitorRunner {
    /// A runner over a monitor built from `builder`.
    ///
    /// A builder-configured callback sink
    /// ([`MonitorBuilder::sink`](crate::api::MonitorBuilder::sink))
    /// bypasses the event queue and therefore the runner's bus; use
    /// runner subscriptions instead when running through here.
    pub fn new(builder: MonitorBuilder) -> Self {
        MonitorRunner::with_monitor(builder.build())
    }

    /// A runner over an already-built monitor.
    pub fn with_monitor(monitor: Monitor) -> Self {
        let handle = monitor.handle();
        let mut bus = EventBus::new(handle.alert_thresholds());
        // Route drain-side telemetry (per-severity events, per-method
        // windows) into the monitor's control cells so every handle's
        // stats_snapshot() carries it.
        bus.attach_control(handle.control_cells());
        MonitorRunner {
            monitor,
            sources: Vec::new(),
            bus,
        }
    }

    /// A cloneable [`BusHandle`](crate::bus::BusHandle) for attaching
    /// subscribers after the run has started — the mechanism behind the
    /// daemon's `SUBSCRIBE` verb. Late subscribers observe a suffix of
    /// the stream starting at the drain loop's next publish.
    pub fn bus_handle(&mut self) -> crate::bus::BusHandle {
        self.bus.handle()
    }

    /// A live [`MonitorHandle`] onto the runner's monitor — available
    /// before the run starts, so sources can take a
    /// [stop token](crate::control::MonitorHandle::stop_token) and
    /// alert thresholds can be tuned up front.
    pub fn handle(&self) -> MonitorHandle {
        self.monitor.handle()
    }

    /// Adds a packet source. On a threaded monitor every source ingests
    /// on its own thread; on an inline monitor sources are drained
    /// sequentially, in configuration order.
    pub fn source(mut self, source: impl PacketSource + Send + 'static) -> Self {
        self.sources.push(Box::new(source));
        self
    }

    /// Subscribes a sink to the full event stream (an unfiltered
    /// subscription); every subscriber observes its events in
    /// subscription order.
    pub fn sink(self, sink: impl EventSink + Send + 'static) -> Self {
        self.subscribe(EventFilter::all(), sink)
    }

    /// Subscribes a sink to the slice of the stream `filter` selects.
    /// The filter is evaluated once per event on the drain thread;
    /// events it rejects never reach the sink.
    pub fn subscribe(mut self, filter: EventFilter, sink: impl EventSink + Send + 'static) -> Self {
        self.bus.subscribe(filter, sink);
        self
    }

    /// Runs every source to completion (or until a graceful
    /// [`stop`](crate::control::MonitorHandle::stop)), publishes all
    /// events to the bus, seals the monitor, and flushes the
    /// subscribers. The end-of-run flush is lossless: `finish()` lifts
    /// the queue bound, so every flow's sealed tail reaches the bus
    /// under either overflow policy.
    pub fn run(self) -> RunnerReport {
        let MonitorRunner {
            mut monitor,
            sources,
            mut bus,
        } = self;
        let handle = monitor.handle();
        let n_sources = sources.len();

        // One ingest port per source — threaded monitors only. An inline
        // monitor (or a portless run) falls back to sequential ingestion
        // on this thread.
        let ports: Option<Vec<IngestPort>> = (0..n_sources)
            .map(|_| monitor.ingest_port())
            .collect::<Option<Vec<_>>>();

        let source_reports = match ports {
            Some(ports) if !ports.is_empty() => {
                run_threaded(&mut monitor, sources, ports, &mut bus, &handle)
            }
            _ => run_inline(&mut monitor, sources, &mut bus, &handle),
        };

        for event in monitor.drain_shared() {
            bus.publish(&event);
        }
        for event in monitor.finish_shared() {
            bus.publish(&event);
        }
        bus.flush();
        RunnerReport {
            // finish() joined the workers, so the counters are settled.
            stats: handle.stats_snapshot().stats,
            events: bus.published(),
            sources: source_reports,
        }
    }

    /// Starts a supervised background run: the whole pipeline (sources,
    /// monitor, bus) moves to a supervisor thread and this returns
    /// immediately with a [`RunningMonitor`] — a cloneable live
    /// [`MonitorHandle`] plus the join point for the final
    /// [`RunnerReport`]. Stop it gracefully with
    /// [`RunningMonitor::stop`] (or any handle clone's `stop()` +
    /// [`RunningMonitor::join`]).
    pub fn spawn(self) -> RunningMonitor {
        let handle = self.monitor.handle();
        let supervisor = std::thread::Builder::new()
            .name("vcaml-runner".into())
            .spawn(move || self.run())
            .expect("spawn runner supervisor"); // lint: allow(no-unwrap-in-lib) -- spawn fails only on OS thread exhaustion; no recovery at this layer
        RunningMonitor { handle, supervisor }
    }
}

impl std::fmt::Debug for MonitorRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorRunner")
            .field("sources", &self.sources.len())
            .field("subscribers", &self.bus.subscribers())
            .finish_non_exhaustive()
    }
}

/// A supervised background run started by [`MonitorRunner::spawn`]:
/// observe and steer it through [`RunningMonitor::handle`], end it with
/// [`RunningMonitor::join`] (wait for the sources) or
/// [`RunningMonitor::stop`] (graceful stop, then join).
///
/// Dropping a `RunningMonitor` without joining detaches the run: it
/// continues to completion on its supervisor thread (any handle clone
/// can still stop it), but its report is lost.
pub struct RunningMonitor {
    handle: MonitorHandle,
    supervisor: std::thread::JoinHandle<RunnerReport>,
}

impl RunningMonitor {
    /// A cloneable live handle onto the running monitor.
    pub fn handle(&self) -> MonitorHandle {
        self.handle.clone()
    }

    /// Whether the run has completed (its report is ready to
    /// [`join`](RunningMonitor::join) without blocking).
    pub fn is_finished(&self) -> bool {
        self.supervisor.is_finished()
    }

    /// Waits for the run to complete and returns its report.
    ///
    /// # Panics
    /// Propagates a panic from the supervisor thread.
    pub fn join(self) -> RunnerReport {
        self.supervisor.join().expect("runner supervisor panicked") // lint: allow(no-unwrap-in-lib) -- join re-raises the supervisor panic instead of hiding it
    }

    /// Requests a graceful stop and waits for the run to wind down:
    /// ingest ports stop pulling at the next packet boundary, in-flight
    /// packets flush to the shards, every flow is sealed, and every
    /// event produced before the stop reaches the subscribers. Returns
    /// the settled report.
    pub fn stop(self) -> RunnerReport {
        self.handle.stop();
        self.join()
    }
}

impl std::fmt::Debug for RunningMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningMonitor")
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

/// Sequential fallback: drive every source on the caller's thread,
/// draining to the bus after each packet (the inline monitor produces
/// events synchronously, so this is maximal freshness at no extra
/// cost). Checks the graceful-stop flag between packets.
fn run_inline(
    monitor: &mut Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    bus: &mut EventBus,
    handle: &MonitorHandle,
) -> Vec<SourceReport> {
    let mut reports = Vec::with_capacity(sources.len());
    for mut source in sources {
        let mut packets = 0u64;
        let mut error = None;
        while !handle.stop_requested() {
            match source.next_packet() {
                Ok(Some(pkt)) => {
                    packets += 1;
                    match pkt {
                        SourcePacket::Record { link, record } => {
                            monitor.ingest_pcap_record(link, &record)
                        }
                        SourcePacket::Captured(cap) => monitor.ingest_captured(&cap),
                        SourcePacket::Parsed { flow, packet } => {
                            monitor.ingest_packet(flow, packet)
                        }
                    }
                    for event in monitor.drain_shared() {
                        bus.publish(&event);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
        reports.push(SourceReport { packets, error });
    }
    reports
}

/// Threaded path: one ingest thread per source, each with its own port;
/// the caller's thread is the event loop that drains the queue to the
/// bus until every ingest thread is done. That loop is what keeps a
/// `Block` queue live — workers it parks are woken by our drains. Each
/// ingest thread checks the graceful-stop flag between packets and
/// flushes its port on the way out, so a stop loses nothing already
/// pulled.
fn run_threaded(
    monitor: &mut Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    ports: Vec<IngestPort>,
    bus: &mut EventBus,
    handle: &MonitorHandle,
) -> Vec<SourceReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .into_iter()
            .zip(ports)
            .map(|(mut source, mut port)| {
                let stop = handle.stop_token();
                scope.spawn(move || {
                    let mut packets = 0u64;
                    let mut error = None;
                    // Live sources (taps, paced replays) hand every
                    // packet straight to its shard worker: at wall-clock
                    // rates the batch would otherwise sit half-filled
                    // for seconds, starving the workers — and every
                    // live observer — of traffic that already arrived.
                    let live = source.is_live();
                    while !stop.is_stopped() {
                        match source.next_packet() {
                            Ok(Some(pkt)) => {
                                packets += 1;
                                match pkt {
                                    SourcePacket::Record { link, record } => {
                                        port.ingest_pcap_record(link, &record)
                                    }
                                    SourcePacket::Captured(cap) => port.ingest_captured(&cap),
                                    SourcePacket::Parsed { flow, packet } => {
                                        port.ingest_packet(flow, packet)
                                    }
                                }
                                if live {
                                    port.flush();
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                error = Some(e.to_string());
                                break;
                            }
                        }
                    }
                    port.flush();
                    SourceReport { packets, error }
                })
            })
            .collect();
        loop {
            let mut drained_any = false;
            for event in monitor.drain_shared() {
                bus.publish(&event);
                drained_any = true;
            }
            if handles.iter().all(|h| h.is_finished()) {
                break;
            }
            if !drained_any {
                // Nothing ready: don't spin against the queue lock while
                // the workers chew on their batches.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest thread panicked")) // lint: allow(no-unwrap-in-lib) -- join re-raises an ingest panic instead of hiding it
            .collect()
    })
}
