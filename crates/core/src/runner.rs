//! `MonitorRunner`: sources in, one monitor, sinks out.
//!
//! The runner ties the pluggable I/O layer together: any number of
//! [`PacketSource`]s feed one [`Monitor`], and every drained [`QoeEvent`]
//! fans out to every configured [`EventSink`], in order. On a threaded
//! monitor each source gets its **own ingest thread with its own ingest
//! port**: the per-packet parse, flow hash, and channel hand-off — the
//! serial section of the parallel monitor — run once per source instead
//! of once per monitor, so ingest scales with sources the way engine
//! work already scales with shard workers. Per-flow packet order within
//! one source is preserved end to end; flows should not span sources
//! (packets for a flow split across sources interleave in channel-arrival
//! order, which is real-tap behaviour but not deterministic).
//!
//! The runner's event loop is the queue's consumer, so the monitor's
//! backpressure semantics hold unchanged: under
//! [`OverflowPolicy::Block`](crate::api::OverflowPolicy) a slow sink
//! slows the drain, fills the queue, parks the shard workers, fills the
//! ingest channels, and finally stalls the sources — end-to-end
//! backpressure from sink to source. Under `DropOldest` the sinks see
//! exact [`QoeEvent::Dropped`] markers instead.
//!
//! ```
//! use vcaml::api::{EstimationMethod, MonitorBuilder};
//! use vcaml::runner::MonitorRunner;
//! use vcaml::sink::CountingSink;
//! use vcaml::source::SyntheticSource;
//! use vcaml::Method;
//! use vcaml_rtp::VcaKind;
//!
//! // Two synthetic taps, two ingest threads, two shard workers, one
//! // event stream.
//! let report = MonitorRunner::new(
//!     MonitorBuilder::new(VcaKind::Teams)
//!         .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
//!         .threads(2),
//! )
//! .source(SyntheticSource::new(VcaKind::Teams, 2, 1, 5))
//! .source(SyntheticSource::new(VcaKind::Teams, 2, 1, 6))
//! .sink(CountingSink::default())
//! .run();
//! assert_eq!(report.sources.len(), 2);
//! assert!(report.sources.iter().all(|s| s.error.is_none()));
//! assert_eq!(report.stats.flows_opened, 2);
//! assert!(report.events > 0);
//! ```

use crate::api::{IngestPort, Monitor, MonitorBuilder, MonitorStats, QoeEvent};
use crate::sink::EventSink;
use crate::source::{PacketSource, SourcePacket};
use serde::Serialize;

/// What one source contributed to a run.
#[derive(Debug, Clone, Serialize)]
pub struct SourceReport {
    /// Packets pulled from the source (before parse classification).
    pub packets: u64,
    /// The read error that ended the source early, if any. A source that
    /// errors stops; the run continues with the others.
    pub error: Option<String>,
}

/// The outcome of [`MonitorRunner::run`].
#[derive(Debug, Clone, Serialize)]
pub struct RunnerReport {
    /// The monitor's final counters, settled after `finish()` — unlike a
    /// mid-run [`Monitor::stats`] snapshot, nothing is still in flight.
    pub stats: MonitorStats,
    /// Events delivered to the sinks (each event counts once no matter
    /// how many sinks observed it).
    pub events: u64,
    /// Per-source packet counts and errors, in configuration order.
    pub sources: Vec<SourceReport>,
}

/// Drives N packet sources through one monitor into M event sinks.
///
/// Construct with a [`MonitorBuilder`] (the runner builds the monitor)
/// or an already-built [`Monitor`] via [`MonitorRunner::with_monitor`],
/// add sources and sinks, then [`MonitorRunner::run`] to completion. See
/// the [module docs](self) for the threading and backpressure model.
pub struct MonitorRunner {
    monitor: Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    sinks: Vec<Box<dyn EventSink>>,
}

impl MonitorRunner {
    /// A runner over a monitor built from `builder`.
    ///
    /// A builder-configured callback sink
    /// ([`MonitorBuilder::sink`](crate::api::MonitorBuilder::sink))
    /// bypasses the event queue and therefore the runner's sinks; use
    /// runner sinks instead when running through here.
    pub fn new(builder: MonitorBuilder) -> Self {
        MonitorRunner::with_monitor(builder.build())
    }

    /// A runner over an already-built monitor.
    pub fn with_monitor(monitor: Monitor) -> Self {
        MonitorRunner {
            monitor,
            sources: Vec::new(),
            sinks: Vec::new(),
        }
    }

    /// Adds a packet source. On a threaded monitor every source ingests
    /// on its own thread; on an inline monitor sources are drained
    /// sequentially, in configuration order.
    pub fn source(mut self, source: impl PacketSource + Send + 'static) -> Self {
        self.sources.push(Box::new(source));
        self
    }

    /// Adds an event sink; every sink observes every event, in
    /// configuration order.
    pub fn sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Runs every source to completion, fans all events out to the
    /// sinks, seals the monitor, and flushes the sinks. The end-of-run
    /// flush is lossless: `finish()` lifts the queue bound, so every
    /// flow's sealed tail reaches the sinks under either overflow
    /// policy.
    pub fn run(self) -> RunnerReport {
        let MonitorRunner {
            mut monitor,
            sources,
            mut sinks,
        } = self;
        let mut events = 0u64;
        let n_sources = sources.len();
        let (stat_cells, queue) = monitor.stats_probe();

        // One ingest port per source — threaded monitors only. An inline
        // monitor (or a portless run) falls back to sequential ingestion
        // on this thread.
        let ports: Option<Vec<IngestPort>> = (0..n_sources)
            .map(|_| monitor.ingest_port())
            .collect::<Option<Vec<_>>>();

        let source_reports = match ports {
            Some(ports) if !ports.is_empty() => {
                run_threaded(&mut monitor, sources, ports, &mut sinks, &mut events)
            }
            _ => run_inline(&mut monitor, sources, &mut sinks, &mut events),
        };

        for event in monitor.drain_events() {
            deliver(&mut sinks, &event, &mut events);
        }
        for event in monitor.finish() {
            deliver(&mut sinks, &event, &mut events);
        }
        for sink in &mut sinks {
            sink.flush();
        }
        RunnerReport {
            // finish() joined the workers, so the counters are settled.
            stats: stat_cells.snapshot(queue.dropped_total(), queue.dropped_by_flow()),
            events,
            sources: source_reports,
        }
    }
}

/// Sequential fallback: drive every source on the caller's thread,
/// draining to the sinks after each packet (the inline monitor produces
/// events synchronously, so this is maximal freshness at no extra cost).
fn run_inline(
    monitor: &mut Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    sinks: &mut [Box<dyn EventSink>],
    events: &mut u64,
) -> Vec<SourceReport> {
    let mut reports = Vec::with_capacity(sources.len());
    for mut source in sources {
        let mut packets = 0u64;
        let mut error = None;
        loop {
            match source.next_packet() {
                Ok(Some(pkt)) => {
                    packets += 1;
                    match pkt {
                        SourcePacket::Record { link, record } => {
                            monitor.ingest_pcap_record(link, &record)
                        }
                        SourcePacket::Captured(cap) => monitor.ingest_captured(&cap),
                        SourcePacket::Parsed { flow, packet } => {
                            monitor.ingest_packet(flow, packet)
                        }
                    }
                    for event in monitor.drain_events() {
                        deliver_slice(sinks, &event, events);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    error = Some(e.to_string());
                    break;
                }
            }
        }
        reports.push(SourceReport { packets, error });
    }
    reports
}

/// Threaded path: one ingest thread per source, each with its own port;
/// the caller's thread is the event loop that drains the queue to the
/// sinks until every ingest thread is done. That loop is what keeps a
/// `Block` queue live — workers it parks are woken by our drains.
fn run_threaded(
    monitor: &mut Monitor,
    sources: Vec<Box<dyn PacketSource + Send>>,
    ports: Vec<IngestPort>,
    sinks: &mut [Box<dyn EventSink>],
    events: &mut u64,
) -> Vec<SourceReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .into_iter()
            .zip(ports)
            .map(|(mut source, mut port)| {
                scope.spawn(move || {
                    let mut packets = 0u64;
                    let mut error = None;
                    loop {
                        match source.next_packet() {
                            Ok(Some(pkt)) => {
                                packets += 1;
                                match pkt {
                                    SourcePacket::Record { link, record } => {
                                        port.ingest_pcap_record(link, &record)
                                    }
                                    SourcePacket::Captured(cap) => port.ingest_captured(&cap),
                                    SourcePacket::Parsed { flow, packet } => {
                                        port.ingest_packet(flow, packet)
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(e) => {
                                error = Some(e.to_string());
                                break;
                            }
                        }
                    }
                    port.flush();
                    SourceReport { packets, error }
                })
            })
            .collect();
        loop {
            let mut drained_any = false;
            for event in monitor.drain_events() {
                deliver_slice(sinks, &event, events);
                drained_any = true;
            }
            if handles.iter().all(|h| h.is_finished()) {
                break;
            }
            if !drained_any {
                // Nothing ready: don't spin against the queue lock while
                // the workers chew on their batches.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest thread panicked"))
            .collect()
    })
}

fn deliver(sinks: &mut Vec<Box<dyn EventSink>>, event: &QoeEvent, events: &mut u64) {
    deliver_slice(sinks.as_mut_slice(), event, events);
}

fn deliver_slice(sinks: &mut [Box<dyn EventSink>], event: &QoeEvent, events: &mut u64) {
    *events += 1;
    for sink in sinks.iter_mut() {
        sink.on_event(event);
    }
}
