//! Media classification from IP/UDP headers alone (§3.1).
//!
//! Voice packets are small ([89, 385] bytes for Teams) while 99% of video
//! packets exceed 564 bytes, so a size threshold `Vmin` separates them.
//! Packets at or above `Vmin` are tagged video; everything else (audio,
//! keepalives, STUN, RTCP) is set aside. The 304-byte rtx keepalives fall
//! below any sensible `Vmin` and are filtered out automatically.

use crate::trace::{Trace, TracePacket};
use serde::{Deserialize, Serialize};
use vcaml_mlcore::ConfusionMatrix;
use vcaml_rtp::MediaKind;

/// Default `Vmin`: between the audio envelope top (385 B) and the 99th
/// percentile video floor (564 B) observed in the paper.
pub const DEFAULT_VMIN: u16 = 450;

/// The size-threshold media classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaClassifier {
    /// Minimum IP total length to tag a packet as video.
    pub vmin: u16,
}

impl Default for MediaClassifier {
    fn default() -> Self {
        MediaClassifier { vmin: DEFAULT_VMIN }
    }
}

impl MediaClassifier {
    /// Creates a classifier with an explicit threshold.
    pub fn new(vmin: u16) -> Self {
        assert!(vmin > 0, "zero threshold");
        MediaClassifier { vmin }
    }

    /// True if the packet would be tagged video.
    pub fn is_video(&self, pkt: &TracePacket) -> bool {
        pkt.size >= self.vmin
    }

    /// Filters a trace down to its video-tagged packets.
    pub fn video_packets<'a>(&self, trace: &'a Trace) -> Vec<&'a TracePacket> {
        trace.packets.iter().filter(|p| self.is_video(p)).collect()
    }

    /// Evaluates classification against simulator ground truth, producing
    /// the paper's Table 2 / A.1 / A.2 confusion matrix. Ground-truth
    /// "video" means primary video packets plus data-carrying
    /// retransmissions (keepalives count as non-video, as the paper
    /// filters them).
    pub fn evaluate(&self, trace: &Trace, keepalive_size: u16) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(vec!["Non-video".into(), "Video".into()]);
        for p in &trace.packets {
            let Some(truth) = p.truth_media else { continue };
            let actual_video = match truth {
                MediaKind::Video => true,
                MediaKind::VideoRtx => p.size != keepalive_size,
                MediaKind::Audio | MediaKind::Control => false,
            };
            m.record(usize::from(actual_video), usize::from(self.is_video(p)));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;
    use vcaml_rtp::{PayloadMap, VcaKind};

    fn pkt(size: u16, truth: MediaKind) -> TracePacket {
        TracePacket {
            ts: Timestamp::ZERO,
            size,
            rtp: None,
            truth_media: Some(truth),
        }
    }

    fn trace(packets: Vec<TracePacket>) -> Trace {
        Trace {
            vca: VcaKind::Teams,
            payload_map: PayloadMap::lab(VcaKind::Teams),
            packets,
            truth: vec![],
            duration_secs: 0,
        }
    }

    #[test]
    fn threshold_separates_sizes() {
        let c = MediaClassifier::default();
        assert!(!c.is_video(&pkt(385, MediaKind::Audio)));
        assert!(c.is_video(&pkt(564, MediaKind::Video)));
        assert!(!c.is_video(&pkt(304, MediaKind::VideoRtx)));
    }

    #[test]
    fn video_packets_filtered() {
        let t = trace(vec![
            pkt(1200, MediaKind::Video),
            pkt(120, MediaKind::Audio),
            pkt(304, MediaKind::VideoRtx),
            pkt(900, MediaKind::Video),
        ]);
        let v = MediaClassifier::default().video_packets(&t);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn confusion_matrix_matches_paper_structure() {
        let t = trace(vec![
            pkt(1200, MediaKind::Video),   // video → video ✓
            pkt(600, MediaKind::Video),    // video → video ✓
            pkt(120, MediaKind::Audio),    // non-video → non-video ✓
            pkt(1100, MediaKind::Control), // DTLS server hello → misclassified
            pkt(304, MediaKind::VideoRtx), // keepalive: actual non-video ✓
            pkt(800, MediaKind::VideoRtx), // data rtx: actual video → video ✓
        ]);
        let m = MediaClassifier::default().evaluate(&t, 304);
        // Actual video: 3 (2 video + 1 data rtx), all predicted video.
        assert_eq!(m.row_total(1), 3);
        assert_eq!(m.count(1, 1), 3);
        // Actual non-video: 3, one misclassified (DTLS).
        assert_eq!(m.row_total(0), 3);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.percent(0, 1) - 33.333).abs() < 0.01);
    }

    #[test]
    fn packets_without_truth_are_skipped_in_eval() {
        let mut p = pkt(1200, MediaKind::Video);
        p.truth_media = None;
        let m = MediaClassifier::default().evaluate(&trace(vec![p]), 304);
        assert_eq!(m.row_total(0) + m.row_total(1), 0);
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn zero_vmin_rejected() {
        let _ = MediaClassifier::new(0);
    }
}
