//! Streaming (single-pass, bounded-memory) QoE estimation.
//!
//! The paper's §7 notes that network-wide deployment needs "streaming
//! versions of the methods". [`StreamingEstimator`] consumes packets one
//! at a time — no trace buffering — and emits one [`StreamingReport`] per
//! completed window. State is O(window) for the feature vector plus O(1)
//! for the frame assembler, independent of call length.

use crate::heuristic::HeuristicParams;
use crate::media::MediaClassifier;
use crate::qoe::QoeEstimate;
use serde::{Deserialize, Serialize};
use vcaml_features::{ipudp_features, PktObs};
use vcaml_mlcore::RandomForest;
use vcaml_netpkt::Timestamp;

/// One emitted window: heuristic estimates plus (optionally) a model
/// prediction made from the same features an offline pipeline would
/// compute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingReport {
    /// Index of the completed window (0-based from stream start).
    pub window: u64,
    /// Heuristic estimates for the window.
    pub heuristic: QoeEstimate,
    /// The 14 IP/UDP features of the window (model input / diagnostics).
    pub features: Vec<f64>,
    /// Frame-rate prediction from the attached model, if any.
    pub model_fps: Option<f64>,
    /// Video packets observed in the window.
    pub video_packets: usize,
}

/// Single-pass estimator.
///
/// Feed packets in capture order via [`StreamingEstimator::push`]; a
/// report is returned whenever a window boundary is crossed. Call
/// [`StreamingEstimator::finish`] at end of stream to flush the last
/// partial window.
pub struct StreamingEstimator {
    classifier: MediaClassifier,
    params: HeuristicParams,
    window_us: i64,
    theta_iat_us: i64,
    model: Option<RandomForest>,

    // O(lookback) frame-assembly state (Algorithm 1, incremental).
    recent: Vec<(u16, u64)>, // (size, frame id)
    next_frame_id: u64,
    frame_sizes: std::collections::HashMap<u64, usize>,

    // Per-window state.
    current_window: u64,
    window_pkts: Vec<PktObs>,
    frame_ends: Vec<Timestamp>,
    window_bits: f64,
    started: bool,
}

impl StreamingEstimator {
    /// Creates an estimator with the paper's parameters for a VCA plus a
    /// window length in seconds.
    pub fn new(
        classifier: MediaClassifier,
        params: HeuristicParams,
        window_secs: u32,
        theta_iat_us: i64,
    ) -> Self {
        assert!(window_secs > 0, "zero window");
        StreamingEstimator {
            classifier,
            params,
            window_us: i64::from(window_secs) * 1_000_000,
            theta_iat_us,
            model: None,
            recent: Vec::new(),
            next_frame_id: 0,
            frame_sizes: std::collections::HashMap::new(),
            current_window: 0,
            window_pkts: Vec::new(),
            frame_ends: Vec::new(),
            window_bits: 0.0,
            started: false,
        }
    }

    /// Attaches a trained frame-rate model; its prediction is included in
    /// every report.
    pub fn with_model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    /// Offers one captured packet (`ts` non-decreasing). Returns completed
    /// window reports (usually zero or one; more if the stream was idle
    /// across several windows).
    pub fn push(&mut self, ts: Timestamp, ip_total_len: u16) -> Vec<StreamingReport> {
        let mut out = Vec::new();
        let window = (ts.as_micros().div_euclid(self.window_us)).max(0) as u64;
        if self.started {
            while self.current_window < window {
                out.push(self.emit());
                self.current_window += 1;
            }
        } else {
            self.started = true;
            self.current_window = window;
        }

        // Media classification.
        let pkt = crate::trace::TracePacket {
            ts,
            size: ip_total_len,
            rtp: None,
            truth_media: None,
        };
        if !self.classifier.is_video(&pkt) {
            return out;
        }
        self.window_pkts.push(PktObs { ts, size: ip_total_len });
        let payload = usize::from(ip_total_len).saturating_sub(52).max(1);
        self.window_bits += payload as f64 * 8.0;

        // Incremental Algorithm 1: compare against up to Nmax recent
        // packets, newest first.
        let matched = self
            .recent
            .iter()
            .rev()
            .find(|(s, _)| s.abs_diff(ip_total_len) <= self.params.delta_max_size)
            .map(|&(_, fid)| fid);
        let fid = match matched {
            Some(fid) => fid,
            None => {
                self.next_frame_id += 1;
                self.next_frame_id - 1
            }
        };
        // A frame "ends" (provisionally) at its latest packet; track only
        // the newest end per window by recording the end each time the
        // frame grows, replacing the previous record for the same frame.
        match self.frame_sizes.get_mut(&fid) {
            Some(sz) => {
                *sz += payload;
                // Move this frame's end time forward.
                if let Some(last) = self.frame_ends.last_mut() {
                    // Only cheap-update when it was the most recent frame;
                    // otherwise push a corrected end (dedup at emit).
                    if self.recent.last().map(|&(_, f)| f) == Some(fid) {
                        *last = ts;
                    } else {
                        self.frame_ends.push(ts);
                    }
                }
            }
            None => {
                self.frame_sizes.insert(fid, payload);
                self.frame_ends.push(ts);
                // Bound assembler memory: drop frames that can no longer
                // match (not in the lookback set).
                if self.frame_sizes.len() > self.params.lookback + 8 {
                    let keep: std::collections::HashSet<u64> =
                        self.recent.iter().map(|&(_, f)| f).collect();
                    self.frame_sizes.retain(|f, _| keep.contains(f) || *f == fid);
                }
            }
        }
        if self.recent.len() == self.params.lookback {
            self.recent.remove(0);
        }
        self.recent.push((ip_total_len, fid));
        out
    }

    /// Flushes the current partial window.
    pub fn finish(&mut self) -> StreamingReport {
        self.emit()
    }

    fn emit(&mut self) -> StreamingReport {
        let w_secs = self.window_us as f64 / 1e6;
        // Dedup frame ends that were double-recorded for corrected frames.
        self.frame_ends.dedup();
        let fps = self.frame_ends.len() as f64 / w_secs;
        let jitter = if self.frame_ends.len() >= 3 {
            let gaps: Vec<f64> = self
                .frame_ends
                .windows(2)
                .map(|w| (w[1] - w[0]).as_millis_f64())
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            (gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64).sqrt()
        } else {
            0.0
        };
        let features = ipudp_features(&self.window_pkts, w_secs, self.theta_iat_us);
        let report = StreamingReport {
            window: self.current_window,
            heuristic: QoeEstimate {
                bitrate_kbps: self.window_bits / w_secs / 1000.0,
                fps,
                frame_jitter_ms: jitter,
            },
            model_fps: self.model.as_ref().map(|m| m.predict(&features)),
            video_packets: self.window_pkts.len(),
            features,
        };
        self.window_pkts.clear();
        self.frame_ends.clear();
        self.window_bits = 0.0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_rtp::VcaKind;

    fn estimator() -> StreamingEstimator {
        StreamingEstimator::new(
            MediaClassifier::default(),
            HeuristicParams::paper(VcaKind::Teams),
            1,
            vcaml_features::DEFAULT_THETA_IAT_US,
        )
    }

    /// 30 fps, two 1100-byte packets per frame, with per-frame size
    /// variation so boundaries are detectable.
    fn synthetic_stream(secs: i64) -> Vec<(Timestamp, u16)> {
        let mut out = Vec::new();
        for f in 0..secs * 30 {
            let t0 = f * 33_333;
            let size = 1000 + ((f % 9) * 13) as u16;
            out.push((Timestamp::from_micros(t0), size));
            out.push((Timestamp::from_micros(t0 + 300), size));
            // Audio packet in between (filtered out).
            out.push((Timestamp::from_micros(t0 + 10_000), 150));
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }

    #[test]
    fn emits_one_report_per_window() {
        let mut est = estimator();
        let mut reports = Vec::new();
        for (ts, size) in synthetic_stream(5) {
            reports.extend(est.push(ts, size));
        }
        reports.push(est.finish());
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window, i as u64);
        }
    }

    #[test]
    fn fps_matches_ground_rate() {
        let mut est = estimator();
        let mut reports = Vec::new();
        for (ts, size) in synthetic_stream(4) {
            reports.extend(est.push(ts, size));
        }
        reports.push(est.finish());
        for r in &reports {
            assert!((r.heuristic.fps - 30.0).abs() <= 2.0, "fps {}", r.heuristic.fps);
            // Frames straddling a window boundary shift one packet.
            assert!((58..=62).contains(&r.video_packets), "{} packets", r.video_packets);
        }
    }

    #[test]
    fn bitrate_counts_video_payload_only() {
        let mut est = estimator();
        let mut reports = Vec::new();
        for (ts, size) in synthetic_stream(2) {
            reports.extend(est.push(ts, size));
        }
        reports.push(est.finish());
        // ~60 packets/s × ~(1050-52) B × 8 ≈ 480 kbps.
        for r in &reports {
            assert!(
                (350.0..650.0).contains(&r.heuristic.bitrate_kbps),
                "bitrate {}",
                r.heuristic.bitrate_kbps
            );
        }
    }

    #[test]
    fn features_match_offline_extractor() {
        let mut est = estimator();
        let stream = synthetic_stream(1);
        let mut reports = Vec::new();
        for &(ts, size) in &stream {
            reports.extend(est.push(ts, size));
        }
        reports.push(est.finish());
        let video: Vec<PktObs> = stream
            .iter()
            .filter(|&&(_, s)| s >= 450)
            .map(|&(ts, size)| PktObs { ts, size })
            .collect();
        let offline = ipudp_features(&video, 1.0, vcaml_features::DEFAULT_THETA_IAT_US);
        assert_eq!(reports[0].features, offline);
    }

    #[test]
    fn idle_gap_emits_empty_windows() {
        let mut est = estimator();
        est.push(Timestamp::from_millis(100), 1100);
        let reports = est.push(Timestamp::from_millis(3_100), 1100);
        assert_eq!(reports.len(), 3); // windows 0,1,2 completed
        assert_eq!(reports[1].video_packets, 0);
        assert_eq!(reports[1].heuristic.fps, 0.0);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut est = estimator();
        // An hour of traffic with adversarial all-distinct sizes.
        for i in 0..200_000i64 {
            let size = 450 + (i % 900) as u16;
            est.push(Timestamp::from_micros(i * 18_000), size);
        }
        assert!(est.frame_sizes.len() <= est.params.lookback + 9);
        assert!(est.recent.len() <= est.params.lookback);
    }

    #[test]
    fn model_prediction_included() {
        use vcaml_mlcore::{Dataset, RandomForest, RandomForestParams, Task};
        // Train a trivial model: fps = constant 30.
        let mut d = Dataset::new(vcaml_features::ipudp_feature_names());
        let stream = synthetic_stream(3);
        let video: Vec<PktObs> = stream
            .iter()
            .filter(|&&(_, s)| s >= 450)
            .map(|&(ts, size)| PktObs { ts, size })
            .collect();
        for w in 0..3usize {
            let win: Vec<PktObs> = video
                .iter()
                .filter(|p| p.ts.second_index() == w as i64)
                .copied()
                .collect();
            d.push(&ipudp_features(&win, 1.0, 3000), 30.0);
        }
        // Duplicate rows so the forest has something to chew on.
        for _ in 0..5 {
            for i in 0..3 {
                let row: Vec<f64> = d.row(i).to_vec();
                d.push(&row, 30.0);
            }
        }
        let model = RandomForest::fit(
            &d,
            Task::Regression,
            &RandomForestParams { n_trees: 5, seed: 0, ..Default::default() },
        );
        let mut est = estimator().with_model(model);
        let mut reports = Vec::new();
        for (ts, size) in synthetic_stream(2) {
            reports.extend(est.push(ts, size));
        }
        reports.push(est.finish());
        for r in &reports {
            let fps = r.model_fps.expect("model attached");
            assert!((fps - 30.0).abs() < 1.0, "model fps {fps}");
        }
    }
}
