//! The event bus: shared events, typed subscriptions, zero-copy fan-out.
//!
//! Every [`QoeEvent`] a monitor produces is allocated once and shared as
//! an [`Arc<QoeEvent>`] end to end — through the bounded collector queue,
//! the runner's drain loop, and every subscriber — so attaching N
//! consumers to one monitor costs N reference-count bumps per event, not
//! N deep copies (a tested invariant: the crate's clone counter stays at
//! zero across the whole delivery path, see
//! [`qoe_event_clone_count`](crate::api::qoe_event_clone_count)).
//!
//! Subscriptions are first-class: an [`EventBus`] pairs each
//! [`EventSink`] with an [`EventFilter`] — by [`EventKind`], by
//! [`FlowKey`] set, by minimum [`Severity`] — and evaluates the filter
//! **once per event on the drain thread**, so a subscriber that only
//! wants alerts pays nothing for the window reports it never sees.
//! [`Severity`] is computed against the monitor's live
//! [`AlertThresholds`], which a
//! [`MonitorHandle`](crate::control::MonitorHandle) can adjust at
//! runtime: retuning the alert bar re-classifies events for every
//! min-severity subscriber without rebuilding the pipeline.
//!
//! ```
//! use vcaml::bus::{AlertThresholds, EventBus, EventFilter, EventKind, Severity};
//! use vcaml::sink::CountingSink;
//!
//! let mut bus = EventBus::new(AlertThresholds::new());
//! bus.subscribe(EventFilter::all(), CountingSink::default());
//! bus.subscribe(
//!     EventFilter::all()
//!         .kinds([EventKind::WindowReport])
//!         .min_severity(Severity::Warning),
//!     CountingSink::default(),
//! );
//! assert_eq!(bus.subscribers(), 2);
//! ```

use crate::api::QoeEvent;
use crate::sink::{report_fps, EventSink};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use vcaml_netpkt::FlowKey;

/// The kind of a [`QoeEvent`], as a filterable tag (one per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// [`QoeEvent::FlowOpened`].
    FlowOpened,
    /// [`QoeEvent::WindowReport`].
    WindowReport,
    /// [`QoeEvent::FlowEvicted`].
    FlowEvicted,
    /// [`QoeEvent::ParseDrop`].
    ParseDrop,
    /// [`QoeEvent::Dropped`].
    Dropped,
}

impl EventKind {
    /// All five kinds, in declaration order.
    pub const ALL: [EventKind; 5] = [
        EventKind::FlowOpened,
        EventKind::WindowReport,
        EventKind::FlowEvicted,
        EventKind::ParseDrop,
        EventKind::Dropped,
    ];

    fn bit(self) -> u8 {
        match self {
            EventKind::FlowOpened => 1 << 0,
            EventKind::WindowReport => 1 << 1,
            EventKind::FlowEvicted => 1 << 2,
            EventKind::ParseDrop => 1 << 3,
            EventKind::Dropped => 1 << 4,
        }
    }
}

impl QoeEvent {
    /// This event's [`EventKind`].
    pub fn kind(&self) -> EventKind {
        match self {
            QoeEvent::FlowOpened { .. } => EventKind::FlowOpened,
            QoeEvent::WindowReport { .. } => EventKind::WindowReport,
            QoeEvent::FlowEvicted { .. } => EventKind::FlowEvicted,
            QoeEvent::ParseDrop { .. } => EventKind::ParseDrop,
            QoeEvent::Dropped { .. } => EventKind::Dropped,
        }
    }
}

/// How operationally urgent an event is, for min-severity subscriptions.
/// Ordered: `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Normal operation: flow lifecycle, healthy window reports.
    Info,
    /// Something an operator may want to look at: a classified parse
    /// drop, or a finalized window whose frame rate is below the live
    /// alert threshold (see [`AlertThresholds`]).
    Warning,
    /// The monitor itself lost visibility: events were shed by the
    /// bounded queue ([`QoeEvent::Dropped`]).
    Critical,
}

impl Severity {
    /// Classifies an event against an alert frame-rate bar (usually the
    /// live [`AlertThresholds::fps`]): any finalized window the event
    /// carries — a standalone report or an eviction's sealed tail —
    /// reporting below the bar makes it a `Warning`. Provisional window
    /// snapshots are documented lower bounds and never escalate past
    /// `Info`.
    pub fn of(event: &QoeEvent, alert_fps: f64) -> Severity {
        match event {
            QoeEvent::Dropped { .. } => Severity::Critical,
            QoeEvent::ParseDrop { .. } => Severity::Warning,
            QoeEvent::WindowReport { .. } | QoeEvent::FlowEvicted { .. }
                if event
                    .final_reports()
                    .iter()
                    .any(|r| report_fps(r).is_some_and(|fps| fps < alert_fps)) =>
            {
                Severity::Warning
            }
            QoeEvent::FlowOpened { .. }
            | QoeEvent::WindowReport { .. }
            | QoeEvent::FlowEvicted { .. } => Severity::Info,
        }
    }
}

/// Runtime-adjustable alert thresholds, shared between the event bus,
/// any [`AlertSink`](crate::sink::AlertSink) built from them, and the
/// [`MonitorHandle`](crate::control::MonitorHandle) that retunes them.
///
/// Cloning shares the underlying cells (this is a handle, not a value):
/// a `set_fps` through any clone is visible to every reader on its next
/// event. The default threshold is `-inf` — no window is ever degraded
/// until an operator sets a bar.
#[derive(Debug, Clone)]
pub struct AlertThresholds {
    fps_bits: Arc<AtomicU64>,
}

impl AlertThresholds {
    /// Thresholds with no alert bar set (`fps()` is `-inf`).
    pub fn new() -> Self {
        AlertThresholds {
            fps_bits: Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
        }
    }

    /// Thresholds with an initial frame-rate bar.
    pub fn with_fps(fps: f64) -> Self {
        let t = AlertThresholds::new();
        t.set_fps(fps);
        t
    }

    /// The live frame-rate bar: a finalized window reporting below this
    /// is [`Severity::Warning`]. `-inf` when unset.
    pub fn fps(&self) -> f64 {
        f64::from_bits(self.fps_bits.load(Relaxed))
    }

    /// Retunes the frame-rate bar; takes effect on the next event.
    pub fn set_fps(&self, fps: f64) {
        self.fps_bits.store(fps.to_bits(), Relaxed);
    }
}

impl Default for AlertThresholds {
    fn default() -> Self {
        AlertThresholds::new()
    }
}

/// A typed event subscription predicate: which slice of the stream a
/// subscriber observes. All three axes compose conjunctively; the
/// default ([`EventFilter::all`]) matches everything.
///
/// Evaluated once per event on the drain thread — a filtered-out
/// subscriber's sink is never called, so narrow subscribers cost
/// nothing on the events they skip.
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Bitmask of accepted [`EventKind`]s; `None` = every kind.
    kinds: Option<u8>,
    /// Accepted flows; `None` = every flow. When set, only events
    /// attributed to one of these flows match — plus
    /// [`QoeEvent::Dropped`] markers whose per-flow breakdown touches
    /// the set (a flow-pinned subscriber must still learn its flow's
    /// events were shed). Parse drops carry no flow and never match.
    flows: Option<BTreeSet<FlowKey>>,
    /// Minimum [`Severity`]; `None` = any.
    min_severity: Option<Severity>,
}

impl EventFilter {
    /// Matches every event (the unfiltered subscription).
    pub fn all() -> Self {
        EventFilter::default()
    }

    /// Restricts to the given event kinds (replaces any previous kind
    /// restriction; an empty list matches no event).
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = EventKind>) -> Self {
        self.kinds = Some(kinds.into_iter().fold(0u8, |m, k| m | k.bit()));
        self
    }

    /// Restricts to events attributed to the given flows (replaces any
    /// previous flow restriction). A [`QoeEvent::Dropped`] marker still
    /// matches when its per-flow breakdown attributes sheds to any of
    /// these flows — the queue's exact-loss accounting must reach the
    /// subscribers watching those flows. [`QoeEvent::ParseDrop`]
    /// happens before flow attribution and never matches.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowKey>) -> Self {
        self.flows = Some(flows.into_iter().collect());
        self
    }

    /// Requires at least this [`Severity`] (as classified against the
    /// bus's live [`AlertThresholds`]).
    pub fn min_severity(mut self, severity: Severity) -> Self {
        self.min_severity = Some(severity);
        self
    }

    /// Whether an event of the given severity passes the filter. The
    /// severity is supplied (not recomputed) so a bus can classify each
    /// event once and evaluate any number of filters against it; use
    /// [`Severity::of`] for post-hoc filtering outside a bus.
    pub fn matches(&self, event: &QoeEvent, severity: Severity) -> bool {
        if let Some(mask) = self.kinds {
            if mask & event.kind().bit() == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_severity {
            if severity < min {
                return false;
            }
        }
        if let Some(flows) = &self.flows {
            match event {
                // Loss markers reach a flow-pinned subscriber when any
                // of its flows shed — otherwise the subscriber would
                // see a silently gapped stream.
                QoeEvent::Dropped { per_flow, .. } => {
                    if !per_flow.iter().any(|(flow, _)| flows.contains(flow)) {
                        return false;
                    }
                }
                QoeEvent::FlowOpened { .. }
                | QoeEvent::WindowReport { .. }
                | QoeEvent::FlowEvicted { .. }
                | QoeEvent::ParseDrop { .. } => match event.flow() {
                    Some(flow) if flows.contains(&flow) => {}
                    _ => return false,
                },
            }
        }
        true
    }
}

struct Subscription {
    filter: EventFilter,
    sink: Box<dyn EventSink + Send>,
}

/// Fan-out of one shared event stream to typed subscribers.
///
/// The bus runs on the draining thread (a
/// [`MonitorRunner`](crate::runner::MonitorRunner)'s event loop owns
/// one): for each published [`Arc<QoeEvent>`] it computes the event's
/// [`Severity`] against the live [`AlertThresholds`] once, then offers
/// the same `Arc` to every subscription whose [`EventFilter`] matches —
/// no deep copy anywhere, regardless of subscriber count.
pub struct EventBus {
    subscriptions: Vec<Subscription>,
    thresholds: AlertThresholds,
    published: u64,
}

impl EventBus {
    /// An empty bus classifying severity against `thresholds`.
    pub fn new(thresholds: AlertThresholds) -> Self {
        EventBus {
            subscriptions: Vec::new(),
            thresholds,
            published: 0,
        }
    }

    /// Adds a subscriber observing the slice of the stream its filter
    /// selects, in subscription order relative to the other sinks.
    pub fn subscribe(&mut self, filter: EventFilter, sink: impl EventSink + Send + 'static) {
        self.subscriptions.push(Subscription {
            filter,
            sink: Box::new(sink),
        });
    }

    /// Number of subscribers.
    pub fn subscribers(&self) -> usize {
        self.subscriptions.len()
    }

    /// Whether the bus has no subscribers.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Events published so far (each counts once, however many
    /// subscribers observed it).
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Offers one shared event to every matching subscriber, in
    /// subscription order.
    pub fn publish(&mut self, event: &Arc<QoeEvent>) {
        self.published += 1;
        let severity = Severity::of(event, self.thresholds.fps());
        for sub in &mut self.subscriptions {
            if sub.filter.matches(event, severity) {
                sub.sink.on_event(event);
            }
        }
    }

    /// Flushes every subscriber, in subscription order (end of run).
    pub fn flush(&mut self) {
        for sub in &mut self.subscriptions {
            sub.sink.flush();
        }
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriptions.len())
            .field("published", &self.published)
            .field("alert_fps", &self.thresholds.fps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CallbackSink;
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::Mutex;
    use vcaml_netpkt::Timestamp;

    fn flow(n: u8) -> FlowKey {
        FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, n)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 200)),
            5001,
            17,
        )
        .0
    }

    fn opened(n: u8) -> Arc<QoeEvent> {
        Arc::new(QoeEvent::FlowOpened {
            flow: flow(n),
            ts: Timestamp::from_micros(1),
        })
    }

    fn dropped() -> Arc<QoeEvent> {
        Arc::new(QoeEvent::Dropped {
            count: 3,
            per_flow: vec![],
        })
    }

    #[test]
    fn kind_and_flow_filters_select_their_slice() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (a, b) = (Arc::clone(&seen), Arc::clone(&seen));
        let mut bus = EventBus::new(AlertThresholds::new());
        bus.subscribe(
            EventFilter::all().kinds([EventKind::Dropped]),
            CallbackSink::new(move |e| a.lock().unwrap().push(("kinds", e.tag()))),
        );
        bus.subscribe(
            EventFilter::all().flows([flow(1)]),
            CallbackSink::new(move |e| b.lock().unwrap().push(("flows", e.tag()))),
        );
        bus.publish(&opened(1));
        bus.publish(&opened(2));
        bus.publish(&dropped());
        assert_eq!(bus.published(), 3);
        let seen = seen.lock().unwrap();
        // The kind subscriber saw only the drop marker; the flow
        // subscriber saw only flow 1's open (flow-less events never
        // match a flow filter).
        assert_eq!(*seen, vec![("flows", "flow_opened"), ("kinds", "dropped")]);
    }

    #[test]
    fn min_severity_tracks_live_thresholds() {
        let thresholds = AlertThresholds::new();
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let mut bus = EventBus::new(thresholds.clone());
        bus.subscribe(
            EventFilter::all().min_severity(Severity::Critical),
            CallbackSink::new(move |_| *n2.lock().unwrap() += 1),
        );
        bus.publish(&opened(1)); // Info: filtered out
        bus.publish(&dropped()); // Critical: delivered
        assert_eq!(*n.lock().unwrap(), 1);
        assert_eq!(thresholds.fps(), f64::NEG_INFINITY);
        thresholds.set_fps(24.0);
        assert_eq!(thresholds.fps(), 24.0);
    }

    #[test]
    fn flow_filter_admits_drop_markers_touching_its_flows() {
        let filter = EventFilter::all().flows([flow(1)]);
        let touching = QoeEvent::Dropped {
            count: 4,
            per_flow: vec![(flow(1), 3)],
        };
        let elsewhere = QoeEvent::Dropped {
            count: 2,
            per_flow: vec![(flow(2), 2)],
        };
        assert!(
            filter.matches(&touching, Severity::Critical),
            "a flow-pinned subscriber must learn its flow shed events"
        );
        assert!(!filter.matches(&elsewhere, Severity::Critical));
    }

    #[test]
    fn empty_kind_list_matches_nothing() {
        let filter = EventFilter::all().kinds([]);
        assert!(!filter.matches(&opened(1), Severity::Info));
        assert!(!filter.matches(&dropped(), Severity::Critical));
        assert!(EventFilter::all().matches(&dropped(), Severity::Critical));
    }
}
