//! The event bus: shared events, typed subscriptions, zero-copy fan-out.
//!
//! Every [`QoeEvent`] a monitor produces is allocated once and shared as
//! an [`Arc<QoeEvent>`] end to end — through the bounded collector queue,
//! the runner's drain loop, and every subscriber — so attaching N
//! consumers to one monitor costs N reference-count bumps per event, not
//! N deep copies (a tested invariant: the crate's clone counter stays at
//! zero across the whole delivery path, see
//! [`qoe_event_clone_count`](crate::api::qoe_event_clone_count)).
//!
//! Subscriptions are first-class: an [`EventBus`] pairs each
//! [`EventSink`] with an [`EventFilter`] — by [`EventKind`], by
//! [`FlowKey`] set, by minimum [`Severity`] — and evaluates the filter
//! **once per event on the drain thread**, so a subscriber that only
//! wants alerts pays nothing for the window reports it never sees.
//! [`Severity`] is computed against the monitor's live
//! [`AlertThresholds`], which a
//! [`MonitorHandle`](crate::control::MonitorHandle) can adjust at
//! runtime: retuning the alert bar re-classifies events for every
//! min-severity subscriber without rebuilding the pipeline.
//!
//! ```
//! use vcaml::bus::{AlertThresholds, EventBus, EventFilter, EventKind, Severity};
//! use vcaml::sink::CountingSink;
//!
//! let mut bus = EventBus::new(AlertThresholds::new());
//! bus.subscribe(EventFilter::all(), CountingSink::default());
//! bus.subscribe(
//!     EventFilter::all()
//!         .kinds([EventKind::WindowReport])
//!         .min_severity(Severity::Warning),
//!     CountingSink::default(),
//! );
//! assert_eq!(bus.subscribers(), 2);
//! ```

use crate::api::QoeEvent;
use crate::control::ControlShared;
use crate::sink::{report_fps, EventSink};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use vcaml_netpkt::FlowKey;
use vcaml_vcasim::VcaProfile;

/// The kind of a [`QoeEvent`], as a filterable tag (one per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// [`QoeEvent::FlowOpened`].
    FlowOpened,
    /// [`QoeEvent::WindowReport`].
    WindowReport,
    /// [`QoeEvent::FlowEvicted`].
    FlowEvicted,
    /// [`QoeEvent::ParseDrop`].
    ParseDrop,
    /// [`QoeEvent::Dropped`].
    Dropped,
}

impl EventKind {
    /// All five kinds, in declaration order.
    pub const ALL: [EventKind; 5] = [
        EventKind::FlowOpened,
        EventKind::WindowReport,
        EventKind::FlowEvicted,
        EventKind::ParseDrop,
        EventKind::Dropped,
    ];

    fn bit(self) -> u8 {
        match self {
            EventKind::FlowOpened => 1 << 0,
            EventKind::WindowReport => 1 << 1,
            EventKind::FlowEvicted => 1 << 2,
            EventKind::ParseDrop => 1 << 3,
            EventKind::Dropped => 1 << 4,
        }
    }

    /// Stable machine-readable name — the same tag
    /// [`QoeEvent::tag`](crate::api::QoeEvent::tag) puts in JSON lines,
    /// reused by the control-socket filter grammar.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FlowOpened => "flow_opened",
            EventKind::WindowReport => "window_report",
            EventKind::FlowEvicted => "flow_evicted",
            EventKind::ParseDrop => "parse_drop",
            EventKind::Dropped => "dropped",
        }
    }

    /// Parses [`EventKind::name`]; `None` for anything else.
    pub fn from_name(text: &str) -> Option<Self> {
        EventKind::ALL.into_iter().find(|k| k.name() == text)
    }
}

impl QoeEvent {
    /// This event's [`EventKind`].
    pub fn kind(&self) -> EventKind {
        match self {
            QoeEvent::FlowOpened { .. } => EventKind::FlowOpened,
            QoeEvent::WindowReport { .. } => EventKind::WindowReport,
            QoeEvent::FlowEvicted { .. } => EventKind::FlowEvicted,
            QoeEvent::ParseDrop { .. } => EventKind::ParseDrop,
            QoeEvent::Dropped { .. } => EventKind::Dropped,
        }
    }
}

/// How operationally urgent an event is, for min-severity subscriptions.
/// Ordered: `Info < Warning < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Normal operation: flow lifecycle, healthy window reports.
    Info,
    /// Something an operator may want to look at: a classified parse
    /// drop, or a finalized window whose frame rate is below the live
    /// alert threshold (see [`AlertThresholds`]).
    Warning,
    /// The monitor itself lost visibility: events were shed by the
    /// bounded queue ([`QoeEvent::Dropped`]).
    Critical,
}

impl Severity {
    /// Classifies an event against an [`AlertBar`] (usually a
    /// [`AlertThresholds::bar`] snapshot): any finalized window the
    /// event carries — a standalone report or an eviction's sealed tail
    /// — falling below *any* floor (frame rate, bitrate, or the
    /// resolution-class floor expressed through the ladder) makes it a
    /// `Warning`. Provisional window snapshots are documented lower
    /// bounds and never escalate past `Info`.
    pub fn of(event: &QoeEvent, bar: &AlertBar) -> Severity {
        match event {
            QoeEvent::Dropped { .. } => Severity::Critical,
            QoeEvent::ParseDrop { .. } => Severity::Warning,
            QoeEvent::WindowReport { .. } | QoeEvent::FlowEvicted { .. }
                if event.final_reports().iter().any(|r| bar.degrades(r)) =>
            {
                Severity::Warning
            }
            QoeEvent::FlowOpened { .. }
            | QoeEvent::WindowReport { .. }
            | QoeEvent::FlowEvicted { .. } => Severity::Info,
        }
    }

    /// Index into per-severity counter arrays (`Info` = 0, `Warning` =
    /// 1, `Critical` = 2) — the order of
    /// [`MonitorSnapshot::events_by_severity`](crate::control::MonitorSnapshot::events_by_severity).
    pub fn index(self) -> usize {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Critical => 2,
        }
    }

    /// All three severities, in ascending order (the counter-array
    /// order of [`Severity::index`]).
    pub const ALL: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Critical];

    /// Lowercase machine-readable name (`"info"` / `"warning"` /
    /// `"critical"`), as used in JSON snapshots, metric labels, and the
    /// control-socket filter grammar.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Parses [`Severity::name`]; `None` for anything else.
    pub fn from_name(text: &str) -> Option<Self> {
        Severity::ALL.into_iter().find(|s| s.name() == text)
    }
}

/// A plain-value snapshot of the live [`AlertThresholds`], loaded once
/// per event on the drain thread so classifying an event against many
/// filters reads the atomics exactly once. Unset floors are `-inf` (or
/// `None` for the resolution floor) and degrade nothing.
#[derive(Debug, Clone, Copy)]
pub struct AlertBar {
    /// Frame-rate floor; a finalized window reporting below is degraded.
    pub fps: f64,
    /// Bitrate floor in kbps, against the window's estimated bitrate.
    pub min_kbps: f64,
    /// Resolution-class floor as a frame height (e.g. `360` = "at least
    /// 360p"), for display; the judgement uses `res_min_kbps`.
    pub res_height: Option<u32>,
    /// The derived bitrate bound of the resolution floor: the lowest
    /// ladder rung delivering `res_height` or better. A window whose
    /// estimated bitrate maps below that rung is degraded.
    pub res_min_kbps: f64,
}

impl AlertBar {
    /// Whether a finalized window report falls below any floor.
    pub fn degrades(&self, report: &crate::engine::WindowReport) -> bool {
        if report_fps(report).is_some_and(|fps| fps < self.fps) {
            return true;
        }
        if let Some(est) = &report.estimate {
            if est.bitrate_kbps < self.min_kbps {
                return true;
            }
            if self.res_height.is_some() && est.bitrate_kbps < self.res_min_kbps {
                return true;
            }
        }
        false
    }
}

/// Runtime-adjustable alert thresholds, shared between the event bus,
/// any [`AlertSink`](crate::sink::AlertSink) built from them, and the
/// [`MonitorHandle`](crate::control::MonitorHandle) that retunes them.
///
/// Three independent floors, each unset by default (no window is ever
/// degraded until an operator sets a bar):
///
/// * a **frame-rate floor** ([`AlertThresholds::set_fps`]);
/// * a **bitrate floor** in kbps ([`AlertThresholds::set_min_kbps`]),
///   against the window's estimated video bitrate;
/// * a **resolution-class floor** expressed as a frame height
///   ([`AlertThresholds::set_resolution_floor`]): the height is mapped
///   through a VCA's bitrate ladder to the lowest rung delivering that
///   height or better, and a window whose estimated bitrate maps below
///   that rung — i.e. whose inferred resolution class is below the
///   floor, the same est-bitrate→ladder mapping the scenario harness
///   scores with — is degraded.
///
/// Cloning shares the underlying cells (this is a handle, not a value):
/// a setter called through any clone is visible to every reader on its
/// next event.
#[derive(Debug, Clone)]
pub struct AlertThresholds {
    fps_bits: Arc<AtomicU64>,
    min_kbps_bits: Arc<AtomicU64>,
    /// Resolution floor height; 0 = unset.
    res_height: Arc<AtomicU64>,
    /// Derived kbps bound of the resolution floor (`-inf` = unset).
    res_kbps_bits: Arc<AtomicU64>,
}

impl AlertThresholds {
    /// Thresholds with no floor set (`fps()` is `-inf`).
    pub fn new() -> Self {
        AlertThresholds {
            fps_bits: Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
            min_kbps_bits: Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
            res_height: Arc::new(AtomicU64::new(0)),
            res_kbps_bits: Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
        }
    }

    /// Thresholds with an initial frame-rate bar.
    pub fn with_fps(fps: f64) -> Self {
        let t = AlertThresholds::new();
        t.set_fps(fps);
        t
    }

    /// The live frame-rate bar: a finalized window reporting below this
    /// is [`Severity::Warning`]. `-inf` when unset.
    pub fn fps(&self) -> f64 {
        f64::from_bits(self.fps_bits.load(Relaxed))
    }

    /// Retunes the frame-rate bar; takes effect on the next event.
    pub fn set_fps(&self, fps: f64) {
        self.fps_bits.store(fps.to_bits(), Relaxed);
    }

    /// The live bitrate floor in kbps. `-inf` when unset.
    pub fn min_kbps(&self) -> f64 {
        f64::from_bits(self.min_kbps_bits.load(Relaxed))
    }

    /// Retunes the bitrate floor; takes effect on the next event.
    pub fn set_min_kbps(&self, kbps: f64) {
        self.min_kbps_bits.store(kbps.to_bits(), Relaxed);
    }

    /// The live resolution-class floor as a frame height, if set.
    pub fn resolution_floor(&self) -> Option<u32> {
        let h = self.res_height.load(Relaxed);
        (h > 0).then_some(h as u32)
    }

    /// Sets the resolution-class floor: windows whose estimated bitrate
    /// maps (through `ladder`) to a rung below `height` are degraded.
    /// A height above the ladder's top rung pins the floor to the top
    /// rung. `height` 0 clears the floor.
    pub fn set_resolution_floor(&self, height: u32, ladder: &VcaProfile) {
        if height == 0 {
            self.clear_resolution_floor();
            return;
        }
        // The lowest rung delivering `height` or better; ladders are
        // ascending, so fall back to the top rung for oversized floors.
        let bound = ladder
            .ladder
            .iter()
            .filter(|r| r.height >= height)
            .map(|r| r.min_kbps)
            .fold(f64::INFINITY, f64::min);
        let bound = if bound.is_finite() {
            bound
        } else {
            ladder
                .ladder
                .iter()
                .map(|r| r.min_kbps)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        self.res_kbps_bits.store(bound.to_bits(), Relaxed);
        self.res_height.store(u64::from(height), Relaxed);
    }

    /// Clears the resolution-class floor.
    pub fn clear_resolution_floor(&self) {
        self.res_height.store(0, Relaxed);
        self.res_kbps_bits
            .store(f64::NEG_INFINITY.to_bits(), Relaxed);
    }

    /// One consistent-enough plain-value snapshot of every floor —
    /// loaded once per event by the bus, sinks, and the metrics
    /// exporter.
    pub fn bar(&self) -> AlertBar {
        AlertBar {
            fps: self.fps(),
            min_kbps: self.min_kbps(),
            res_height: self.resolution_floor(),
            res_min_kbps: f64::from_bits(self.res_kbps_bits.load(Relaxed)),
        }
    }
}

impl Default for AlertThresholds {
    fn default() -> Self {
        AlertThresholds::new()
    }
}

/// A typed event subscription predicate: which slice of the stream a
/// subscriber observes. All three axes compose conjunctively; the
/// default ([`EventFilter::all`]) matches everything.
///
/// Evaluated once per event on the drain thread — a filtered-out
/// subscriber's sink is never called, so narrow subscribers cost
/// nothing on the events they skip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventFilter {
    /// Bitmask of accepted [`EventKind`]s; `None` = every kind.
    kinds: Option<u8>,
    /// Accepted flows; `None` = every flow. When set, only events
    /// attributed to one of these flows match — plus
    /// [`QoeEvent::Dropped`] markers whose per-flow breakdown touches
    /// the set (a flow-pinned subscriber must still learn its flow's
    /// events were shed). Parse drops carry no flow and never match.
    flows: Option<BTreeSet<FlowKey>>,
    /// Minimum [`Severity`]; `None` = any.
    min_severity: Option<Severity>,
}

impl EventFilter {
    /// Matches every event (the unfiltered subscription).
    pub fn all() -> Self {
        EventFilter::default()
    }

    /// Restricts to the given event kinds (replaces any previous kind
    /// restriction; an empty list matches no event).
    pub fn kinds(mut self, kinds: impl IntoIterator<Item = EventKind>) -> Self {
        self.kinds = Some(kinds.into_iter().fold(0u8, |m, k| m | k.bit()));
        self
    }

    /// Restricts to events attributed to the given flows (replaces any
    /// previous flow restriction). A [`QoeEvent::Dropped`] marker still
    /// matches when its per-flow breakdown attributes sheds to any of
    /// these flows — the queue's exact-loss accounting must reach the
    /// subscribers watching those flows. [`QoeEvent::ParseDrop`]
    /// happens before flow attribution and never matches.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowKey>) -> Self {
        self.flows = Some(flows.into_iter().collect());
        self
    }

    /// Requires at least this [`Severity`] (as classified against the
    /// bus's live [`AlertThresholds`]).
    pub fn min_severity(mut self, severity: Severity) -> Self {
        self.min_severity = Some(severity);
        self
    }

    /// Whether an event of the given severity passes the filter. The
    /// severity is supplied (not recomputed) so a bus can classify each
    /// event once and evaluate any number of filters against it; use
    /// [`Severity::of`] for post-hoc filtering outside a bus.
    pub fn matches(&self, event: &QoeEvent, severity: Severity) -> bool {
        if let Some(mask) = self.kinds {
            if mask & event.kind().bit() == 0 {
                return false;
            }
        }
        if let Some(min) = self.min_severity {
            if severity < min {
                return false;
            }
        }
        if let Some(flows) = &self.flows {
            match event {
                // Loss markers reach a flow-pinned subscriber when any
                // of its flows shed — otherwise the subscriber would
                // see a silently gapped stream.
                QoeEvent::Dropped { per_flow, .. } => {
                    if !per_flow.iter().any(|(flow, _)| flows.contains(flow)) {
                        return false;
                    }
                }
                QoeEvent::FlowOpened { .. }
                | QoeEvent::WindowReport { .. }
                | QoeEvent::FlowEvicted { .. }
                | QoeEvent::ParseDrop { .. } => match event.flow() {
                    Some(flow) if flows.contains(&flow) => {}
                    _ => return false,
                },
            }
        }
        true
    }
}

struct Subscription {
    filter: EventFilter,
    sink: Box<dyn EventSink + Send>,
}

/// The shared mailbox behind [`BusHandle`]: subscriptions registered
/// while the bus is already running, waiting to be adopted by the drain
/// thread at its next publish.
struct PendingSubs {
    pending: Mutex<Vec<Subscription>>,
    /// Length mirror of `pending`, readable without the lock — the
    /// per-publish fast path is one relaxed load.
    n: AtomicUsize,
}

/// A cloneable registration port onto a live [`EventBus`]: attach new
/// subscribers **while the bus is running** — the mechanism behind the
/// control socket's `SUBSCRIBE` verb. The subscription is adopted by
/// the drain thread at its next publish, so the new sink observes a
/// suffix of the stream starting there (never a torn event). Handles
/// stay valid for the bus's whole life; registering after the run ended
/// parks the sink forever, which is harmless.
#[derive(Clone)]
pub struct BusHandle {
    shared: Arc<PendingSubs>,
}

impl BusHandle {
    /// Registers a subscriber for the slice of the stream `filter`
    /// selects, starting at the drain thread's next publish.
    pub fn subscribe(&self, filter: EventFilter, sink: impl EventSink + Send + 'static) {
        let mut pending = self.shared.pending.lock().expect("pending subs poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned pending-subs lock means a peer thread already panicked; escalate
        pending.push(Subscription {
            filter,
            sink: Box::new(sink),
        });
        self.shared.n.store(pending.len(), Relaxed);
    }
}

impl std::fmt::Debug for BusHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BusHandle")
            .field("pending", &self.shared.n.load(Relaxed))
            .finish()
    }
}

/// Publishes between closed-subscriber sweeps: a detached sink
/// (dropped `SUBSCRIBE` connection) lingers at most this many events
/// before the bus reclaims its slot.
const PRUNE_INTERVAL: u64 = 1024;

/// Fan-out of one shared event stream to typed subscribers.
///
/// The bus runs on the draining thread (a
/// [`MonitorRunner`](crate::runner::MonitorRunner)'s event loop owns
/// one): for each published [`Arc<QoeEvent>`] it computes the event's
/// [`Severity`] against the live [`AlertThresholds`] once, then offers
/// the same `Arc` to every subscription whose [`EventFilter`] matches —
/// no deep copy anywhere, regardless of subscriber count. A
/// [`BusHandle`] can attach further subscribers mid-run, and sinks that
/// report themselves closed ([`EventSink::is_closed`]) are pruned
/// periodically.
pub struct EventBus {
    subscriptions: Vec<Subscription>,
    thresholds: AlertThresholds,
    published: u64,
    /// Live-registration mailbox, created lazily by [`EventBus::handle`].
    remote: Option<Arc<PendingSubs>>,
    /// Telemetry cells of the monitor this bus drains, when attached:
    /// per-severity event counts and per-method finalized-window counts,
    /// accumulated here on the drain thread because severity is
    /// classified exactly once, here.
    telemetry: Option<Arc<ControlShared>>,
}

impl EventBus {
    /// An empty bus classifying severity against `thresholds`.
    pub fn new(thresholds: AlertThresholds) -> Self {
        EventBus {
            subscriptions: Vec::new(),
            thresholds,
            published: 0,
            remote: None,
            telemetry: None,
        }
    }

    /// Adds a subscriber observing the slice of the stream its filter
    /// selects, in subscription order relative to the other sinks.
    pub fn subscribe(&mut self, filter: EventFilter, sink: impl EventSink + Send + 'static) {
        self.subscriptions.push(Subscription {
            filter,
            sink: Box::new(sink),
        });
    }

    /// A cloneable [`BusHandle`] for attaching subscribers while the
    /// bus is running (from another thread; the handle is `Send`).
    pub fn handle(&mut self) -> BusHandle {
        let shared = self.remote.get_or_insert_with(|| {
            Arc::new(PendingSubs {
                pending: Mutex::new(Vec::new()),
                n: AtomicUsize::new(0),
            })
        });
        BusHandle {
            shared: Arc::clone(shared),
        }
    }

    /// Routes this bus's drain-side telemetry (per-severity event
    /// counts, per-method window counts) into a monitor's shared
    /// control cells, where
    /// [`stats_snapshot`](crate::control::MonitorHandle::stats_snapshot)
    /// reads them.
    pub(crate) fn attach_control(&mut self, control: Arc<ControlShared>) {
        self.telemetry = Some(control);
    }

    /// Number of subscribers (excluding pending live registrations not
    /// yet adopted by the drain thread).
    pub fn subscribers(&self) -> usize {
        self.subscriptions.len()
    }

    /// Whether the bus has no subscribers.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Events published so far (each counts once, however many
    /// subscribers observed it).
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Adopts subscriptions registered through a [`BusHandle`] since
    /// the last publish, and periodically sweeps out closed sinks.
    fn adopt_and_prune(&mut self) {
        if let Some(remote) = &self.remote {
            if remote.n.load(Relaxed) > 0 {
                let mut pending = remote.pending.lock().expect("pending subs poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned pending-subs lock means a peer thread already panicked; escalate
                self.subscriptions.append(&mut pending);
                remote.n.store(0, Relaxed);
            }
        }
        if self.published.is_multiple_of(PRUNE_INTERVAL) {
            self.subscriptions.retain(|s| !s.sink.is_closed());
        }
    }

    /// Offers one shared event to every matching subscriber, in
    /// subscription order.
    pub fn publish(&mut self, event: &Arc<QoeEvent>) {
        self.published += 1;
        self.adopt_and_prune();
        let severity = Severity::of(event, &self.thresholds.bar());
        if let Some(control) = &self.telemetry {
            control.record_published(event, severity);
        }
        for sub in &mut self.subscriptions {
            if sub.filter.matches(event, severity) {
                sub.sink.on_event(event);
            }
        }
    }

    /// Flushes every subscriber, in subscription order (end of run).
    /// Also adopts any still-pending live registrations first, so a
    /// subscriber attached just before the end of the stream at least
    /// observes its flush.
    pub fn flush(&mut self) {
        self.adopt_and_prune();
        for sub in &mut self.subscriptions {
            sub.sink.flush();
        }
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriptions.len())
            .field("published", &self.published)
            .field("alert_fps", &self.thresholds.fps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CallbackSink;
    use std::net::{IpAddr, Ipv4Addr};
    use std::sync::Mutex;
    use vcaml_netpkt::Timestamp;

    fn flow(n: u8) -> FlowKey {
        FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, n)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 200)),
            5001,
            17,
        )
        .0
    }

    fn opened(n: u8) -> Arc<QoeEvent> {
        Arc::new(QoeEvent::FlowOpened {
            flow: flow(n),
            ts: Timestamp::from_micros(1),
        })
    }

    fn dropped() -> Arc<QoeEvent> {
        Arc::new(QoeEvent::Dropped {
            count: 3,
            per_flow: vec![],
        })
    }

    #[test]
    fn kind_and_flow_filters_select_their_slice() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (a, b) = (Arc::clone(&seen), Arc::clone(&seen));
        let mut bus = EventBus::new(AlertThresholds::new());
        bus.subscribe(
            EventFilter::all().kinds([EventKind::Dropped]),
            CallbackSink::new(move |e| a.lock().unwrap().push(("kinds", e.tag()))),
        );
        bus.subscribe(
            EventFilter::all().flows([flow(1)]),
            CallbackSink::new(move |e| b.lock().unwrap().push(("flows", e.tag()))),
        );
        bus.publish(&opened(1));
        bus.publish(&opened(2));
        bus.publish(&dropped());
        assert_eq!(bus.published(), 3);
        let seen = seen.lock().unwrap();
        // The kind subscriber saw only the drop marker; the flow
        // subscriber saw only flow 1's open (flow-less events never
        // match a flow filter).
        assert_eq!(*seen, vec![("flows", "flow_opened"), ("kinds", "dropped")]);
    }

    #[test]
    fn min_severity_tracks_live_thresholds() {
        let thresholds = AlertThresholds::new();
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let mut bus = EventBus::new(thresholds.clone());
        bus.subscribe(
            EventFilter::all().min_severity(Severity::Critical),
            CallbackSink::new(move |_| *n2.lock().unwrap() += 1),
        );
        bus.publish(&opened(1)); // Info: filtered out
        bus.publish(&dropped()); // Critical: delivered
        assert_eq!(*n.lock().unwrap(), 1);
        assert_eq!(thresholds.fps(), f64::NEG_INFINITY);
        thresholds.set_fps(24.0);
        assert_eq!(thresholds.fps(), 24.0);
    }

    #[test]
    fn flow_filter_admits_drop_markers_touching_its_flows() {
        let filter = EventFilter::all().flows([flow(1)]);
        let touching = QoeEvent::Dropped {
            count: 4,
            per_flow: vec![(flow(1), 3)],
        };
        let elsewhere = QoeEvent::Dropped {
            count: 2,
            per_flow: vec![(flow(2), 2)],
        };
        assert!(
            filter.matches(&touching, Severity::Critical),
            "a flow-pinned subscriber must learn its flow shed events"
        );
        assert!(!filter.matches(&elsewhere, Severity::Critical));
    }

    #[test]
    fn empty_kind_list_matches_nothing() {
        let filter = EventFilter::all().kinds([]);
        assert!(!filter.matches(&opened(1), Severity::Info));
        assert!(!filter.matches(&dropped(), Severity::Critical));
        assert!(EventFilter::all().matches(&dropped(), Severity::Critical));
    }
}
