//! The live control plane: observe and steer a running monitor.
//!
//! A [`MonitorHandle`] is a cheap, cloneable, thread-safe view onto a
//! [`Monitor`](crate::api::Monitor) — obtained from
//! [`Monitor::handle`](crate::api::Monitor::handle), from
//! [`MonitorRunner::handle`](crate::runner::MonitorRunner::handle), or
//! from a spawned
//! [`RunningMonitor`](crate::runner::RunningMonitor) — that stays valid
//! for the monitor's whole life (and keeps its counters readable after
//! `finish`). It exposes:
//!
//! * [`MonitorHandle::stats_snapshot`] — a consistent-enough live
//!   [`MonitorSnapshot`]: the running [`MonitorStats`] counters, flows
//!   live, undrained events, and the per-shard ingest-channel depths of
//!   a threaded monitor;
//! * [`MonitorHandle::force_flush`] — ask every shard for provisional
//!   snapshots of its pending windows (freshness on demand, same
//!   semantics as the builder's max-lag flush);
//! * [`MonitorHandle::evict_flow`] — seal one flow now, surfacing its
//!   tail windows as a [`QoeEvent::FlowEvicted`](crate::api::QoeEvent)
//!   with [`EvictReason::Requested`](crate::api::EvictReason);
//! * [`MonitorHandle::set_alert_fps`] — retune the live
//!   [`AlertThresholds`] every severity-filtered subscriber and shared
//!   [`AlertSink`](crate::sink::AlertSink) reads;
//! * [`MonitorHandle::stop`] — gracefully stop a run: ingest ports stop
//!   pulling from their sources, in-flight packets are flushed, and the
//!   monitor seals every flow — no event produced before the stop is
//!   lost (a tested invariant).
//!
//! Control requests are applied by whichever thread owns the flow state:
//! shard workers poll them between batches (and on a short idle tick),
//! an inline monitor applies them on its next `ingest`/`drain` call.
//! Handles never touch engines directly, so there is nothing to lock
//! and a dropped or forgotten handle costs nothing.

use crate::api::{MonitorStats, QoeEvent, StatsCells};
use crate::backpressure::EventQueue;
use crate::bus::{AlertThresholds, Severity};
use crate::pipeline::Method;
use serde::{Map, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use vcaml_netpkt::FlowKey;
use vcaml_vcasim::VcaProfile;

/// Shared control cells between a monitor's owner-side state (shard
/// workers or the inline shard) and every [`MonitorHandle`].
#[derive(Debug)]
pub(crate) struct ControlShared {
    /// Graceful-stop flag; ingest ports check it between packets.
    stop: AtomicBool,
    /// Bumped by `force_flush`; shards emit provisional snapshots when
    /// they observe a new epoch.
    flush_epoch: AtomicU64,
    /// Append-only eviction requests; each shard keeps a cursor and
    /// seals the requested flows it owns.
    evictions: Mutex<Vec<FlowKey>>,
    /// `evictions.len()`, readable without the lock (shards skip the
    /// lock entirely while no new request exists).
    evict_len: AtomicUsize,
    /// Live alert thresholds (severity classification + shared sinks).
    pub(crate) thresholds: AlertThresholds,
    /// Per-worker ingest backlog, in packets handed to the worker's
    /// channel and not yet processed. Empty on an inline monitor.
    depths: Vec<AtomicU64>,
    /// Per-worker tracked-flow footprint in bytes (engine state plus
    /// table overhead), refreshed by each shard's idle sweep. One slot
    /// even on an inline monitor (its shard publishes as worker 0).
    flow_bytes: Vec<AtomicU64>,
    /// Flows counted into the matching `flow_bytes` slot.
    flow_counts: Vec<AtomicU64>,
    /// Events published by the bus, by [`Severity`] slot
    /// ([`Severity::index`]). Written only by the drain thread (where
    /// severity is classified, exactly once per event); read by
    /// snapshots and the metrics exporter.
    severity_counts: [AtomicU64; 3],
    /// Finalized window reports by [`Method`] slot ([`Method::index`]),
    /// same writer discipline as `severity_counts`.
    windows_by_method: [AtomicU64; 4],
}

impl ControlShared {
    pub(crate) fn new(workers: usize) -> Self {
        ControlShared {
            stop: AtomicBool::new(false),
            flush_epoch: AtomicU64::new(0),
            evictions: Mutex::new(Vec::new()),
            evict_len: AtomicUsize::new(0),
            thresholds: AlertThresholds::new(),
            depths: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            flow_bytes: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            flow_counts: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            severity_counts: Default::default(),
            windows_by_method: Default::default(),
        }
    }

    /// Folds one published event into the drain-side telemetry: its
    /// severity count, and one window count per finalized report.
    /// Called by the bus on the drain thread only.
    pub(crate) fn record_published(&self, event: &QoeEvent, severity: Severity) {
        self.severity_counts[severity.index()].fetch_add(1, Relaxed);
        for report in event.final_reports() {
            self.windows_by_method[report.method.index()].fetch_add(1, Relaxed);
        }
    }

    /// Published-event counts by [`Severity`] slot.
    pub(crate) fn severity_counts(&self) -> [u64; 3] {
        self.severity_counts.each_ref().map(|c| c.load(Relaxed))
    }

    /// Finalized-window counts by [`Method`] slot.
    pub(crate) fn windows_by_method(&self) -> [u64; 4] {
        self.windows_by_method.each_ref().map(|c| c.load(Relaxed))
    }

    pub(crate) fn stop_requested(&self) -> bool {
        self.stop.load(Relaxed)
    }

    /// Current flush epoch (shards compare against their last seen).
    pub(crate) fn flush_epoch(&self) -> u64 {
        self.flush_epoch.load(Relaxed)
    }

    /// Whether requests exist past `cursor` — the lock-free (and
    /// refcount-free) per-packet fast path.
    pub(crate) fn has_evictions_since(&self, cursor: usize) -> bool {
        self.evict_len.load(Relaxed) != cursor
    }

    /// Eviction requests past `cursor`, advancing it.
    pub(crate) fn evictions_since(&self, cursor: &mut usize) -> Vec<FlowKey> {
        if self.evict_len.load(Relaxed) == *cursor {
            return Vec::new();
        }
        let requests = self.evictions.lock().expect("evictions poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned evictions lock means a peer thread already panicked; escalate
        let fresh = requests[(*cursor).min(requests.len())..].to_vec();
        *cursor = requests.len();
        fresh
    }

    /// Records `n` packets handed to `worker`'s channel.
    pub(crate) fn depth_add(&self, worker: usize, n: u64) {
        if let Some(cell) = self.depths.get(worker) {
            cell.fetch_add(n, Relaxed);
        }
    }

    /// Records `n` packets processed by `worker`.
    pub(crate) fn depth_sub(&self, worker: usize, n: u64) {
        if let Some(cell) = self.depths.get(worker) {
            cell.fetch_sub(n, Relaxed);
        }
    }

    /// Publishes `worker`'s tracked-flow footprint (idle-sweep cadence:
    /// once per stream-second of that shard's traffic).
    pub(crate) fn set_flow_footprint(&self, worker: usize, bytes: u64, flows: u64) {
        if let Some(cell) = self.flow_bytes.get(worker) {
            cell.store(bytes, Relaxed);
        }
        if let Some(cell) = self.flow_counts.get(worker) {
            cell.store(flows, Relaxed);
        }
    }

    /// Summed footprint across workers: `(bytes, flows)`.
    pub(crate) fn flow_footprint(&self) -> (u64, u64) {
        let bytes = self.flow_bytes.iter().map(|c| c.load(Relaxed)).sum();
        let flows = self.flow_counts.iter().map(|c| c.load(Relaxed)).sum();
        (bytes, flows)
    }
}

/// A live, consistent-enough snapshot of a monitor's state, taken by
/// [`MonitorHandle::stats_snapshot`]. On a threaded monitor the counters
/// are eventually consistent (packets still queued on a shard channel
/// are not yet counted); after `finish` everything is settled.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    /// The running ingest/emit counters.
    pub stats: MonitorStats,
    /// Flows currently tracked (opened minus evicted).
    pub flows_live: u64,
    /// Events queued for the consumer and not yet drained.
    pub pending_events: usize,
    /// Per-shard-worker ingest backlog, in packets handed to the worker
    /// and not yet processed. Empty on an inline monitor.
    pub shard_depths: Vec<u64>,
    /// Estimated resident bytes per tracked flow: engine state plus flow
    /// table overhead, averaged over the flows live at the last idle
    /// sweep (0 until a shard has swept). [`StatsMode::Sketch`]
    /// engines hold this constant regardless of window content — the
    /// strictly-O(1)-per-flow deployment story.
    ///
    /// [`StatsMode::Sketch`]: vcaml_features::StatsMode::Sketch
    pub bytes_per_flow: u64,
    /// The live alert frame-rate bar, if one is set.
    pub alert_fps: Option<f64>,
    /// The live alert bitrate floor (kbps), if one is set.
    pub alert_min_kbps: Option<f64>,
    /// The live resolution-class floor (frame height), if one is set.
    pub alert_resolution_floor: Option<u32>,
    /// Events published on the bus so far, by severity
    /// ([`Severity::ALL`] order: info, warning, critical). All zero
    /// until a drain loop with an attached bus has run.
    pub events_by_severity: [u64; 3],
    /// Finalized window reports published on the bus, by method
    /// ([`Method::ALL`] order). Same caveat as `events_by_severity`.
    pub windows_by_method: [u64; 4],
    /// Whether a graceful stop has been requested.
    pub stop_requested: bool,
}

impl MonitorSnapshot {
    /// One compact JSON object (`"type":"stats"`), the JSON-lines form
    /// the CLI's `--stats-every` emits to stderr.
    pub fn to_json_line(&self) -> String {
        // lint: allow(no-unwrap-in-lib) -- serializing an in-memory snapshot via the serde shim cannot fail
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }
}

impl Serialize for MonitorSnapshot {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("type".into(), Value::String("stats".into()));
        m.insert("stats".into(), self.stats.to_value());
        m.insert("flows_live".into(), self.flows_live.to_value());
        m.insert("pending_events".into(), self.pending_events.to_value());
        m.insert(
            "shard_depths".into(),
            Value::Array(self.shard_depths.iter().map(|d| d.to_value()).collect()),
        );
        m.insert("bytes_per_flow".into(), self.bytes_per_flow.to_value());
        if let Some(fps) = self.alert_fps {
            m.insert("alert_fps".into(), fps.to_value());
        }
        if let Some(kbps) = self.alert_min_kbps {
            m.insert("alert_min_kbps".into(), kbps.to_value());
        }
        if let Some(height) = self.alert_resolution_floor {
            m.insert("alert_resolution_floor".into(), height.to_value());
        }
        let mut sev = Map::new();
        for s in Severity::ALL {
            sev.insert(
                s.name().into(),
                self.events_by_severity[s.index()].to_value(),
            );
        }
        m.insert("events_by_severity".into(), Value::Object(sev));
        let mut methods = Map::new();
        for method in Method::ALL {
            methods.insert(
                method.slug().into(),
                self.windows_by_method[method.index()].to_value(),
            );
        }
        m.insert("windows_by_method".into(), Value::Object(methods));
        m.insert("stop_requested".into(), Value::Bool(self.stop_requested));
        Value::Object(m)
    }
}

/// A cloneable live handle onto a monitor: snapshot its counters, force
/// a flush, evict a flow, retune alert thresholds, request a graceful
/// stop. See the [module docs](self) for semantics and timing.
#[derive(Clone)]
pub struct MonitorHandle {
    pub(crate) control: Arc<ControlShared>,
    pub(crate) stats: Arc<StatsCells>,
    pub(crate) queue: Arc<EventQueue>,
}

impl MonitorHandle {
    /// Takes a live [`MonitorSnapshot`]. Never blocks the data path
    /// (counter loads plus one short queue lock).
    pub fn stats_snapshot(&self) -> MonitorSnapshot {
        let stats = self
            .stats
            .snapshot(self.queue.dropped_total(), self.queue.dropped_by_flow());
        let flows_live = stats.flows_opened.saturating_sub(stats.flows_evicted);
        let (footprint_bytes, footprint_flows) = self.control.flow_footprint();
        MonitorSnapshot {
            flows_live,
            bytes_per_flow: footprint_bytes
                .checked_div(footprint_flows)
                .unwrap_or_default(),
            pending_events: self.queue.len(),
            shard_depths: self
                .control
                .depths
                .iter()
                .map(|d| d.load(Relaxed))
                .collect(),
            alert_fps: self.alert_fps(),
            alert_min_kbps: self.alert_min_kbps(),
            alert_resolution_floor: self.control.thresholds.resolution_floor(),
            events_by_severity: self.control.severity_counts(),
            windows_by_method: self.control.windows_by_method(),
            stop_requested: self.control.stop_requested(),
            stats,
        }
    }

    /// Asks every shard to emit provisional snapshots of its flows'
    /// pending windows (marked `provisional: true`, superseded by later
    /// final reports — the same contract as the builder's
    /// `flush_after_packets`). Applied by shard workers within their
    /// next poll tick; an inline monitor applies it on its next
    /// `ingest`/`drain` call.
    pub fn force_flush(&self) {
        self.control.flush_epoch.fetch_add(1, Relaxed);
    }

    /// Asks the owning shard to seal `flow` now: its engine is finished
    /// and the tail windows surface as a `FlowEvicted` event with
    /// [`EvictReason::Requested`](crate::api::EvictReason::Requested).
    /// Unknown flows are ignored. Same application timing as
    /// [`MonitorHandle::force_flush`].
    pub fn evict_flow(&self, flow: FlowKey) {
        let mut requests = self.control.evictions.lock().expect("evictions poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned evictions lock means a peer thread already panicked; escalate
        requests.push(flow);
        self.control.evict_len.store(requests.len(), Relaxed);
    }

    /// The live [`AlertThresholds`] (a shared handle: retuning through
    /// it is visible to the bus and every shared alert sink).
    pub fn alert_thresholds(&self) -> AlertThresholds {
        self.control.thresholds.clone()
    }

    /// Retunes the alert frame-rate bar, effective from the next event.
    pub fn set_alert_fps(&self, fps: f64) {
        self.control.thresholds.set_fps(fps);
    }

    /// The live alert frame-rate bar, if one is set.
    pub fn alert_fps(&self) -> Option<f64> {
        let fps = self.control.thresholds.fps();
        (fps > f64::NEG_INFINITY).then_some(fps)
    }

    /// Retunes the alert bitrate floor (kbps), effective from the next
    /// event: finalized windows estimating below it classify as
    /// [`Severity::Warning`] and trip shared alert sinks.
    pub fn set_alert_min_kbps(&self, kbps: f64) {
        self.control.thresholds.set_min_kbps(kbps);
    }

    /// The live alert bitrate floor (kbps), if one is set.
    pub fn alert_min_kbps(&self) -> Option<f64> {
        let kbps = self.control.thresholds.min_kbps();
        (kbps > f64::NEG_INFINITY).then_some(kbps)
    }

    /// Sets the resolution-class floor: `height` is mapped through
    /// `ladder` (the VCA's bitrate ladder) to a kbps bound once, here,
    /// so per-event classification stays lock-free. Height 0 clears the
    /// floor. See
    /// [`AlertThresholds::set_resolution_floor`](crate::bus::AlertThresholds::set_resolution_floor).
    pub fn set_alert_resolution_floor(&self, height: u32, ladder: &VcaProfile) {
        self.control.thresholds.set_resolution_floor(height, ladder);
    }

    /// The live resolution-class floor (frame height), if one is set.
    pub fn alert_resolution_floor(&self) -> Option<u32> {
        self.control.thresholds.resolution_floor()
    }

    /// Requests a graceful stop: every ingest port stops pulling from
    /// its source at the next packet boundary, in-flight packets are
    /// flushed to the shards, and the run seals every flow — events
    /// already produced are all delivered. Idempotent; never blocks.
    pub fn stop(&self) {
        self.control.stop.store(true, Relaxed);
    }

    /// Whether a graceful stop has been requested.
    pub fn stop_requested(&self) -> bool {
        self.control.stop_requested()
    }

    /// The shared control cells — in-crate only, for wiring a bus's
    /// drain-side telemetry back into this monitor's snapshots.
    pub(crate) fn control_cells(&self) -> Arc<ControlShared> {
        Arc::clone(&self.control)
    }

    /// A minimal stop-flag view for sources that sleep (see
    /// [`Paced::with_stop`](crate::source::Paced::with_stop)).
    pub fn stop_token(&self) -> StopToken {
        StopToken {
            control: Arc::clone(&self.control),
        }
    }
}

impl std::fmt::Debug for MonitorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorHandle")
            .field("snapshot", &self.stats_snapshot())
            .finish_non_exhaustive()
    }
}

/// A cloneable view of just the graceful-stop flag, for packet sources
/// that wait (real-time pacing, future live taps) and must notice a
/// [`MonitorHandle::stop`] without polling the full handle.
#[derive(Clone)]
pub struct StopToken {
    control: Arc<ControlShared>,
}

impl StopToken {
    /// Whether a graceful stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.control.stop_requested()
    }
}

impl std::fmt::Debug for StopToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StopToken")
            .field("stopped", &self.is_stopped())
            .finish()
    }
}
