//! The IP/UDP Heuristic (paper Algorithm 1): frame-boundary detection
//! using only packet sizes.
//!
//! Because VCAs fragment each frame into equal-sized packets while
//! consecutive frames differ in size, a packet whose size is within
//! `Δmax_size` of a recently seen packet belongs to that packet's frame;
//! otherwise it starts a new frame. Comparing against up to `Nmax`
//! previous packets (most recent first) absorbs mild reordering.

use crate::frames::Frame;
use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;
use vcaml_rtp::VcaKind;

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeuristicParams {
    /// Maximum intra-frame packet size difference, bytes (paper: 2 for
    /// all VCAs).
    pub delta_max_size: u16,
    /// How many previous packets to compare against (paper §4.3: Meet 3,
    /// Teams 2, Webex 1).
    pub lookback: usize,
}

impl HeuristicParams {
    /// The paper's per-VCA parameterization (§4.3).
    pub fn paper(vca: VcaKind) -> Self {
        let lookback = match vca {
            VcaKind::Meet => 3,
            VcaKind::Teams => 2,
            VcaKind::Webex => 1,
        };
        HeuristicParams {
            delta_max_size: 2,
            lookback,
        }
    }
}

impl Default for HeuristicParams {
    fn default() -> Self {
        HeuristicParams {
            delta_max_size: 2,
            lookback: 2,
        }
    }
}

/// Per-packet frame assignment produced by the heuristic (used by the
/// error-taxonomy analysis of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the packet in the input sequence.
    pub packet_idx: usize,
    /// Heuristic frame id the packet was assigned to.
    pub frame_id: usize,
}

/// Incremental Algorithm 1: consumes video packets one at a time and
/// emits frames as soon as they are *sealed* — provably immutable because
/// their id has left the `Nmax` lookback set and can never be matched
/// again. This is the single implementation of frame assembly; the batch
/// [`IpUdpHeuristic::assemble`] replays a slice through it.
///
/// State is O(`lookback`): the lookback set plus at most `lookback + 1`
/// open frames, independent of stream length.
#[derive(Debug, Clone)]
pub struct IpUdpAssembler {
    params: HeuristicParams,
    /// `(size, frame id)` of the last `lookback` packets, most recent last.
    recent: std::collections::VecDeque<(u16, u64)>,
    /// Frames whose ids are still in the lookback set, in ascending id
    /// order (ids are created ascending and removals preserve order).
    /// At most `lookback + 1` entries, so linear scans beat hashing.
    open: Vec<(u64, Frame)>,
    next_id: u64,
}

impl IpUdpAssembler {
    /// Creates an assembler with explicit parameters.
    pub fn new(params: HeuristicParams) -> Self {
        assert!(params.lookback >= 1, "lookback must be at least 1");
        IpUdpAssembler {
            params,
            recent: std::collections::VecDeque::with_capacity(params.lookback + 1),
            open: Vec::with_capacity(params.lookback + 1),
            next_id: 0,
        }
    }

    /// Offers one video packet (`ts` non-decreasing). Returns the frame id
    /// the packet was assigned to (ids count frames in creation order) and
    /// any frames sealed by this packet, each tagged with its id.
    ///
    /// Frame sizes subtract the 40-byte IP/UDP and 12-byte fixed RTP
    /// overheads per packet, as the paper's bitrate accounting does
    /// (§5.1.3).
    pub fn push(&mut self, ts: Timestamp, size: u16) -> (u64, Vec<(u64, Frame)>) {
        let mut sealed = Vec::new();
        let fid = self.push_into(ts, size, &mut sealed);
        (fid, sealed)
    }

    /// [`Self::push`] appending sealed frames into a caller-owned buffer
    /// instead of allocating — the per-packet form the streaming engine
    /// uses (sealing happens every couple of packets, so a fresh `Vec`
    /// per call would dominate the hot path).
    // lint: hot_path
    pub fn push_into(&mut self, ts: Timestamp, size: u16, sealed: &mut Vec<(u64, Frame)>) -> u64 {
        let payload = usize::from(size).saturating_sub(52).max(1);
        // Compare with up to Nmax previous packets, most recent first.
        let matched = self
            .recent
            .iter()
            .rev()
            .find(|(s, _)| s.abs_diff(size) <= self.params.delta_max_size)
            .map(|&(_, fid)| fid);
        let fid = match matched {
            Some(fid) => {
                // Matched frames are overwhelmingly the newest: scan from
                // the back.
                let (_, f) = self
                    .open
                    .iter_mut()
                    .rev()
                    .find(|(id, _)| *id == fid)
                    .expect("matched frame is open"); // lint: allow(no-unwrap-in-lib) -- frame index comes from the open-frame scan just above
                f.size_bytes += payload;
                f.n_packets += 1;
                f.end_ts = f.end_ts.max(ts);
                f.start_ts = f.start_ts.min(ts);
                fid
            }
            None => {
                let fid = self.next_id;
                self.next_id += 1;
                self.open.push((
                    fid,
                    Frame {
                        start_ts: ts,
                        end_ts: ts,
                        size_bytes: payload,
                        n_packets: 1,
                        rtp_ts: None,
                    },
                ));
                fid
            }
        };
        if self.recent.len() == self.params.lookback {
            let (_, evicted) = self.recent.pop_front().expect("non-empty lookback"); // lint: allow(no-unwrap-in-lib) -- loop guard holds recent.len() > lookback, so the deque is non-empty
                                                                                     // Seal the evicted frame once no other lookback entry keeps it
                                                                                     // matchable (and the current packet did not rejoin it).
            if evicted != fid && !self.recent.iter().any(|&(_, f)| f == evicted) {
                // Evicted ids are the oldest: scan from the front. The
                // order-preserving remove keeps `open` id-sorted.
                if let Some(pos) = self.open.iter().position(|(id, _)| *id == evicted) {
                    let (_, frame) = self.open.remove(pos);
                    sealed.push((evicted, frame));
                }
            }
        }
        self.recent.push_back((size, fid));
        fid
    }

    /// Seals every open frame (end of stream) and resets the assembler.
    pub fn finish(&mut self) -> Vec<(u64, Frame)> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// [`Self::finish`] appending into a caller-owned buffer; the drained
    /// map and lookback deque retain their capacity for the next stream.
    pub fn finish_into(&mut self, out: &mut Vec<(u64, Frame)>) {
        self.recent.clear();
        // `open` is id-sorted by construction, so the append is too; it
        // leaves `open` empty with its capacity retained.
        out.append(&mut self.open);
    }

    /// Heap bytes currently held, for per-flow memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.recent.capacity() * std::mem::size_of::<(u16, u64)>()
            + self.open.capacity() * std::mem::size_of::<(u64, Frame)>()
    }

    /// Earliest end time any still-open frame currently has. Open frames
    /// can only move *forward* in time, so every window strictly before
    /// this bound is final.
    pub fn min_open_end(&self) -> Option<Timestamp> {
        self.open.iter().map(|(_, f)| f.end_ts).min()
    }

    /// Number of frames still open (≤ lookback + 1).
    pub fn open_frames(&self) -> usize {
        self.open.len()
    }
}

/// The IP/UDP Heuristic frame-boundary estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct IpUdpHeuristic {
    /// Algorithm parameters.
    pub params: HeuristicParams,
}

impl IpUdpHeuristic {
    /// Creates the estimator with explicit parameters.
    pub fn new(params: HeuristicParams) -> Self {
        assert!(params.lookback >= 1, "lookback must be at least 1");
        IpUdpHeuristic { params }
    }

    /// Runs Algorithm 1 over video packets `(arrival, ip_total_len)` in
    /// arrival order by replaying them through the incremental
    /// [`IpUdpAssembler`]. Returns the reconstructed frames (ordered by
    /// end time) and the per-packet assignments (frame ids in creation
    /// order).
    pub fn assemble(&self, packets: &[(Timestamp, u16)]) -> (Vec<Frame>, Vec<Assignment>) {
        let mut asm = IpUdpAssembler::new(self.params);
        let mut assignments = Vec::with_capacity(packets.len());
        let mut frames: Vec<(u64, Frame)> = Vec::new();
        for (i, &(ts, size)) in packets.iter().enumerate() {
            let (fid, sealed) = asm.push(ts, size);
            assignments.push(Assignment {
                packet_idx: i,
                frame_id: fid as usize,
            });
            frames.extend(sealed);
        }
        frames.extend(asm.finish());
        // End-time order with creation order breaking ties, matching the
        // stable sort the batch algorithm historically applied.
        frames.sort_by_key(|&(id, f)| (f.end_ts, id));
        (frames.into_iter().map(|(_, f)| f).collect(), assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn run(pkts: &[(i64, u16)], params: HeuristicParams) -> (Vec<Frame>, Vec<Assignment>) {
        let input: Vec<(Timestamp, u16)> = pkts.iter().map(|&(ms, s)| (t(ms), s)).collect();
        IpUdpHeuristic::new(params).assemble(&input)
    }

    #[test]
    fn equal_sizes_group_into_one_frame() {
        let (frames, _) = run(
            &[(0, 1100), (1, 1100), (2, 1101)],
            HeuristicParams::default(),
        );
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_packets, 3);
    }

    #[test]
    fn size_jump_starts_new_frame() {
        let (frames, _) = run(
            &[(0, 1100), (1, 1100), (33, 900), (34, 900)],
            HeuristicParams::default(),
        );
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].n_packets, 2);
        assert_eq!(frames[1].n_packets, 2);
        assert_eq!(frames[1].end_ts, t(34));
    }

    #[test]
    fn threshold_is_inclusive() {
        // Δ = 2: sizes 1000 and 1002 are the same frame; 1003 is not.
        let (frames, _) = run(&[(0, 1000), (1, 1002)], HeuristicParams::default());
        assert_eq!(frames.len(), 1);
        let (frames, _) = run(&[(0, 1000), (1, 1003)], HeuristicParams::default());
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn lookback_recovers_interleaved_packet() {
        // Frame A (1100) interleaved with frame B (800):
        // A A B A B — the late A packet is 2 back from the last.
        let pkts = [(0, 1100), (1, 1100), (2, 800), (3, 1101), (4, 801)];
        let (frames_lb1, _) = run(
            &pkts,
            HeuristicParams {
                delta_max_size: 2,
                lookback: 1,
            },
        );
        let (frames_lb2, _) = run(
            &pkts,
            HeuristicParams {
                delta_max_size: 2,
                lookback: 2,
            },
        );
        // Lookback 1 can only match against the immediately preceding
        // packet, so both interleaved packets open spurious frames.
        assert_eq!(frames_lb1.len(), 4);
        // Lookback 2 assigns it back to frame A.
        assert_eq!(frames_lb2.len(), 2);
        assert_eq!(frames_lb2.iter().map(|f| f.n_packets).sum::<u32>(), 5);
    }

    #[test]
    fn similar_consecutive_frames_coalesce() {
        // The documented failure mode: two frames of identical packet
        // sizes merge (paper case 1).
        let (frames, _) = run(
            &[(0, 1000), (1, 1000), (33, 1001), (34, 1001)],
            HeuristicParams::default(),
        );
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_packets, 4);
    }

    #[test]
    fn unequal_fragmentation_splits() {
        // The Meet failure mode: intra-frame spread > Δ splits one frame
        // (paper case 2).
        let (frames, _) = run(&[(0, 1100), (1, 700)], HeuristicParams::default());
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn payload_accounting_subtracts_headers() {
        let (frames, _) = run(&[(0, 1052)], HeuristicParams::default());
        assert_eq!(frames[0].size_bytes, 1000);
    }

    #[test]
    fn assignments_cover_all_packets() {
        let pkts = [(0, 1100), (1, 900), (2, 902), (3, 1100)];
        let (frames, asg) = run(
            &pkts,
            HeuristicParams {
                delta_max_size: 2,
                lookback: 3,
            },
        );
        assert_eq!(asg.len(), 4);
        let total: u32 = frames.iter().map(|f| f.n_packets).sum();
        assert_eq!(total, 4);
        // Packet 3 (1100) matches packet 0 via 3-deep lookback.
        assert_eq!(asg[3].frame_id, asg[0].frame_id);
    }

    #[test]
    fn empty_input() {
        let (frames, asg) = run(&[], HeuristicParams::default());
        assert!(frames.is_empty() && asg.is_empty());
    }

    #[test]
    fn paper_params_per_vca() {
        assert_eq!(HeuristicParams::paper(VcaKind::Meet).lookback, 3);
        assert_eq!(HeuristicParams::paper(VcaKind::Teams).lookback, 2);
        assert_eq!(HeuristicParams::paper(VcaKind::Webex).lookback, 1);
        for v in VcaKind::ALL {
            assert_eq!(HeuristicParams::paper(v).delta_max_size, 2);
        }
    }

    #[test]
    #[should_panic(expected = "lookback")]
    fn zero_lookback_rejected() {
        let _ = IpUdpHeuristic::new(HeuristicParams {
            delta_max_size: 2,
            lookback: 0,
        });
    }
}
