//! The RTP Heuristic baseline (§3.3): frame boundaries from the RTP
//! timestamp field (all packets of a frame share it) and the marker bit
//! (set on a frame's last packet). This mirrors the approach Michel et
//! al. used for Zoom.

use crate::frames::Frame;
use crate::trace::Trace;
use vcaml_netpkt::Timestamp;

/// Reconstructs frames from the trace's RTP video stream.
///
/// Packets are grouped by RTP timestamp; the frame end time is the
/// arrival of its marker packet when one was received, else the last
/// arrival. Frame sizes count RTP payload bytes (IP total length minus
/// the 52 bytes of IP/UDP/RTP headers), matching the heuristic bitrate
/// accounting.
pub fn assemble(trace: &Trace) -> Vec<Frame> {
    struct Acc {
        frame: Frame,
        marker_at: Option<Timestamp>,
    }
    let mut accs: Vec<Acc> = Vec::new();
    for p in trace.rtp_video_packets() {
        let h = p.rtp.expect("rtp_video_packets yields RTP packets");
        let payload = usize::from(p.size).saturating_sub(52).max(1);
        match accs.iter_mut().rev().take(16).find(|a| a.frame.rtp_ts == Some(h.timestamp)) {
            Some(a) => {
                a.frame.size_bytes += payload;
                a.frame.n_packets += 1;
                a.frame.start_ts = a.frame.start_ts.min(p.ts);
                a.frame.end_ts = a.frame.end_ts.max(p.ts);
                if h.marker {
                    a.marker_at = Some(p.ts);
                }
            }
            None => accs.push(Acc {
                frame: Frame {
                    start_ts: p.ts,
                    end_ts: p.ts,
                    size_bytes: payload,
                    n_packets: 1,
                    rtp_ts: Some(h.timestamp),
                },
                marker_at: h.marker.then_some(p.ts),
            }),
        }
    }
    let mut frames: Vec<Frame> = accs
        .into_iter()
        .map(|a| {
            let mut f = a.frame;
            // Marker packet defines the end of the frame when present.
            if let Some(m) = a.marker_at {
                f.end_ts = m;
            }
            f
        })
        .collect();
    frames.sort_by_key(|f| f.end_ts);
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePacket;
    use vcaml_rtp::{PayloadMap, RtpHeader, VcaKind};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn pkt(ms: i64, size: u16, pt: u8, seq: u16, ts: u32, marker: bool) -> TracePacket {
        TracePacket {
            ts: t(ms),
            size,
            rtp: Some(RtpHeader::basic(pt, seq, ts, 1, marker)),
            truth_media: None,
        }
    }

    fn trace(packets: Vec<TracePacket>) -> Trace {
        Trace {
            vca: VcaKind::Teams,
            payload_map: PayloadMap::lab(VcaKind::Teams),
            packets,
            truth: vec![],
            duration_secs: 0,
        }
    }

    #[test]
    fn groups_by_timestamp_and_marker_sets_end() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(1, 1052, 102, 1, 100, true), // marker
            pkt(5, 1052, 102, 2, 100, false), // straggler after marker
            pkt(33, 900, 102, 3, 200, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].n_packets, 3);
        assert_eq!(frames[0].end_ts, t(1)); // marker arrival, not straggler
        assert_eq!(frames[0].size_bytes, 3000);
        assert_eq!(frames[1].rtp_ts, Some(200));
    }

    #[test]
    fn ignores_audio_and_rtx() {
        let tr = trace(vec![
            pkt(0, 150, 111, 0, 1, false),  // audio
            pkt(1, 304, 103, 0, 2, false),  // rtx keepalive
            pkt(2, 1052, 102, 1, 100, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_packets, 1);
    }

    #[test]
    fn no_marker_falls_back_to_last_arrival() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(4, 1052, 102, 1, 100, false),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames[0].end_ts, t(4));
    }

    #[test]
    fn reordered_frames_sorted_by_end() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(2, 900, 102, 1, 200, true), // frame 200 completes first
            pkt(50, 1052, 102, 2, 100, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames[0].rtp_ts, Some(200));
        assert_eq!(frames[1].rtp_ts, Some(100));
    }

    #[test]
    fn empty_trace() {
        assert!(assemble(&trace(vec![])).is_empty());
    }
}
