//! The RTP Heuristic baseline (§3.3): frame boundaries from the RTP
//! timestamp field (all packets of a frame share it) and the marker bit
//! (set on a frame's last packet). This mirrors the approach Michel et
//! al. used for Zoom.

use crate::frames::Frame;
use crate::trace::Trace;
use std::collections::VecDeque;
use vcaml_netpkt::Timestamp;

/// How many of the most recently opened frames a new packet is matched
/// against. A frame older than that can never change again and is sealed.
pub const SCAN_DEPTH: usize = 16;

struct Acc {
    id: u64,
    frame: Frame,
    marker_at: Option<Timestamp>,
}

impl Acc {
    fn finalize(self) -> (u64, Frame) {
        let mut f = self.frame;
        // Marker packet defines the end of the frame when present.
        if let Some(m) = self.marker_at {
            f.end_ts = m;
        }
        (self.id, f)
    }

    /// The earliest end time this frame can finalize with: the marker
    /// arrival once seen (later markers only move it forward), else the
    /// latest arrival so far.
    fn min_final_end(&self) -> Timestamp {
        self.marker_at.unwrap_or(self.frame.end_ts)
    }
}

/// Incremental RTP frame assembly: groups video packets by RTP timestamp,
/// matching each packet against the [`SCAN_DEPTH`] most recently opened
/// frames, and seals a frame as soon as it falls out of that scan window.
/// The batch [`assemble`] replays a trace through this; the streaming
/// engine feeds it packet by packet. State is O([`SCAN_DEPTH`]).
#[derive(Default)]
pub struct RtpAssembler {
    open: VecDeque<Acc>,
    next_id: u64,
}

impl RtpAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        RtpAssembler::default()
    }

    /// Offers one video-stream packet (`ts` non-decreasing): its arrival,
    /// RTP timestamp, marker bit, and IP total length. Returns any frames
    /// sealed by this packet, tagged with creation-order ids.
    ///
    /// Frame sizes count RTP payload bytes (IP total length minus the 52
    /// bytes of IP/UDP/RTP headers), matching the heuristic bitrate
    /// accounting.
    pub fn push(
        &mut self,
        ts: Timestamp,
        rtp_ts: u32,
        marker: bool,
        size: u16,
    ) -> Vec<(u64, Frame)> {
        let mut sealed = Vec::new();
        self.push_into(ts, rtp_ts, marker, size, &mut sealed);
        sealed
    }

    /// [`Self::push`] appending sealed frames into a caller-owned buffer
    /// instead of allocating — the per-packet form the streaming engine
    /// uses.
    // lint: hot_path
    pub fn push_into(
        &mut self,
        ts: Timestamp,
        rtp_ts: u32,
        marker: bool,
        size: u16,
        sealed: &mut Vec<(u64, Frame)>,
    ) {
        let payload = usize::from(size).saturating_sub(52).max(1);
        match self
            .open
            .iter_mut()
            .rev()
            .find(|a| a.frame.rtp_ts == Some(rtp_ts))
        {
            Some(a) => {
                a.frame.size_bytes += payload;
                a.frame.n_packets += 1;
                a.frame.start_ts = a.frame.start_ts.min(ts);
                a.frame.end_ts = a.frame.end_ts.max(ts);
                if marker {
                    a.marker_at = Some(ts);
                }
            }
            None => {
                self.open.push_back(Acc {
                    id: self.next_id,
                    frame: Frame {
                        start_ts: ts,
                        end_ts: ts,
                        size_bytes: payload,
                        n_packets: 1,
                        rtp_ts: Some(rtp_ts),
                    },
                    marker_at: marker.then_some(ts),
                });
                self.next_id += 1;
                while self.open.len() > SCAN_DEPTH {
                    // lint: allow(no-unwrap-in-lib) -- loop guard holds open.len() > lookback, so the deque is non-empty
                    sealed.push(self.open.pop_front().expect("len checked").finalize());
                }
            }
        }
    }

    /// Seals every open frame (end of stream) and resets the assembler.
    pub fn finish(&mut self) -> Vec<(u64, Frame)> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// [`Self::finish`] appending into a caller-owned buffer; the open
    /// deque keeps its capacity for the next stream.
    pub fn finish_into(&mut self, out: &mut Vec<(u64, Frame)>) {
        out.extend(self.open.drain(..).map(Acc::finalize));
    }

    /// Heap bytes currently held, for per-flow memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.open.capacity() * std::mem::size_of::<Acc>()
    }

    /// Earliest end time any open frame can still finalize with; windows
    /// strictly before this bound are final.
    pub fn min_open_end(&self) -> Option<Timestamp> {
        self.open.iter().map(Acc::min_final_end).min()
    }

    /// Number of frames still open (≤ [`SCAN_DEPTH`]).
    pub fn open_frames(&self) -> usize {
        self.open.len()
    }
}

/// Reconstructs frames from the trace's RTP video stream by replaying it
/// through the incremental [`RtpAssembler`].
///
/// Packets are grouped by RTP timestamp; the frame end time is the
/// arrival of its marker packet when one was received, else the last
/// arrival. Output frames are ordered by end time (creation order breaks
/// ties).
pub fn assemble(trace: &Trace) -> Vec<Frame> {
    let mut asm = RtpAssembler::new();
    let mut frames: Vec<(u64, Frame)> = Vec::new();
    for p in trace.rtp_video_packets() {
        let h = p.rtp.expect("rtp_video_packets yields RTP packets"); // lint: allow(no-unwrap-in-lib) -- rtp_video_packets filters on rtp.is_some()
        frames.extend(asm.push(p.ts, h.timestamp, h.marker, p.size));
    }
    frames.extend(asm.finish());
    frames.sort_by_key(|&(id, f)| (f.end_ts, id));
    frames.into_iter().map(|(_, f)| f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePacket;
    use vcaml_rtp::{PayloadMap, RtpHeader, VcaKind};

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn pkt(ms: i64, size: u16, pt: u8, seq: u16, ts: u32, marker: bool) -> TracePacket {
        TracePacket {
            ts: t(ms),
            size,
            rtp: Some(RtpHeader::basic(pt, seq, ts, 1, marker)),
            truth_media: None,
        }
    }

    fn trace(packets: Vec<TracePacket>) -> Trace {
        Trace {
            vca: VcaKind::Teams,
            payload_map: PayloadMap::lab(VcaKind::Teams),
            packets,
            truth: vec![],
            duration_secs: 0,
        }
    }

    #[test]
    fn groups_by_timestamp_and_marker_sets_end() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(1, 1052, 102, 1, 100, true),  // marker
            pkt(5, 1052, 102, 2, 100, false), // straggler after marker
            pkt(33, 900, 102, 3, 200, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].n_packets, 3);
        assert_eq!(frames[0].end_ts, t(1)); // marker arrival, not straggler
        assert_eq!(frames[0].size_bytes, 3000);
        assert_eq!(frames[1].rtp_ts, Some(200));
    }

    #[test]
    fn ignores_audio_and_rtx() {
        let tr = trace(vec![
            pkt(0, 150, 111, 0, 1, false), // audio
            pkt(1, 304, 103, 0, 2, false), // rtx keepalive
            pkt(2, 1052, 102, 1, 100, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].n_packets, 1);
    }

    #[test]
    fn no_marker_falls_back_to_last_arrival() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(4, 1052, 102, 1, 100, false),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames[0].end_ts, t(4));
    }

    #[test]
    fn reordered_frames_sorted_by_end() {
        let tr = trace(vec![
            pkt(0, 1052, 102, 0, 100, false),
            pkt(2, 900, 102, 1, 200, true), // frame 200 completes first
            pkt(50, 1052, 102, 2, 100, true),
        ]);
        let frames = assemble(&tr);
        assert_eq!(frames[0].rtp_ts, Some(200));
        assert_eq!(frames[1].rtp_ts, Some(100));
    }

    #[test]
    fn empty_trace() {
        assert!(assemble(&trace(vec![])).is_empty());
    }
}
