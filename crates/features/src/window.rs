//! Windowing: slicing a packet stream into the prediction windows `W`
//! over which QoE is estimated (§2.2; default 1 second, swept in Fig. 12).

use vcaml_netpkt::Timestamp;

/// The minimal per-packet observation every IP/UDP method consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktObs {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// IP total length in bytes.
    pub size: u16,
}

/// How far past the nominal duration [`windows_by_second`] will extend
/// for late packets before treating a timestamp as corrupt. Bounds the
/// allocation a single bad timestamp can trigger, and matches the
/// streaming engine's `MAX_WINDOW_GAP` so batch and streaming accept the
/// same late packets (the engine anchors its bound at the last packet's
/// window rather than the nominal duration, so inputs more than this far
/// beyond *both* anchors are treated as corrupt by both paths).
pub const MAX_EXTRA_WINDOWS: usize = 4_096;

/// Groups packets into consecutive fixed-length windows starting at t = 0.
///
/// Returns at least `ceil(duration_secs / window_secs)` entries; window
/// index `i` always corresponds to time `[i·w, (i+1)·w)` and windows with
/// no packets are empty vectors. Packets whose timestamps fall **at or
/// beyond** `duration_secs` extend the output with additional windows
/// (up to [`MAX_EXTRA_WINDOWS`] past the nominal count) rather than being
/// silently dropped, so batch window counts agree with a streaming replay
/// of the same input (callers that want exactly the nominal duration can
/// truncate). Timestamps beyond the extension bound are treated as
/// corrupt and dropped.
///
/// Packets with negative timestamps are outside every window and are
/// dropped — the same normalization the streaming engine applies (capture
/// time is defined to start at t = 0).
///
/// # Panics
/// Panics if `window_secs` is zero.
pub fn windows_by_second(
    pkts: &[PktObs],
    duration_secs: u32,
    window_secs: u32,
) -> Vec<Vec<PktObs>> {
    assert!(window_secs > 0, "zero window");
    let n_windows = duration_secs.div_ceil(window_secs) as usize;
    let max_windows = n_windows.saturating_add(MAX_EXTRA_WINDOWS);
    let mut out: Vec<Vec<PktObs>> = vec![Vec::new(); n_windows];
    let w_us = i64::from(window_secs) * 1_000_000;
    for p in pkts {
        let idx = p.ts.as_micros().div_euclid(w_us);
        if idx >= 0 && (idx as usize) < max_windows {
            if idx as usize >= out.len() {
                out.resize(idx as usize + 1, Vec::new());
            }
            out[idx as usize].push(*p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ms: i64, size: u16) -> PktObs {
        PktObs {
            ts: Timestamp::from_millis(ms),
            size,
        }
    }

    #[test]
    fn one_second_windows() {
        let pkts = vec![p(100, 10), p(999, 20), p(1000, 30), p(2500, 40)];
        let w = windows_by_second(&pkts, 3, 1);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 2);
        assert_eq!(w[1], vec![p(1000, 30)]);
        assert_eq!(w[2], vec![p(2500, 40)]);
    }

    #[test]
    fn empty_windows_preserved() {
        let pkts = vec![p(2500, 40)];
        let w = windows_by_second(&pkts, 4, 1);
        assert_eq!(w.len(), 4);
        assert!(w[0].is_empty() && w[1].is_empty() && w[3].is_empty());
        assert_eq!(w[2].len(), 1);
    }

    #[test]
    fn wider_windows() {
        let pkts = vec![p(100, 1), p(1100, 2), p(2100, 3), p(3100, 4), p(4100, 5)];
        let w = windows_by_second(&pkts, 5, 2);
        assert_eq!(w.len(), 3); // ceil(5/2)
        assert_eq!(w[0].len(), 2);
        assert_eq!(w[1].len(), 2);
        assert_eq!(w[2].len(), 1);
    }

    #[test]
    fn negative_timestamps_dropped_late_packets_extend() {
        let pkts = vec![p(-5, 1), p(10_000, 2)];
        let w = windows_by_second(&pkts, 3, 1);
        // The negative-timestamp packet is outside every window; the
        // packet at t = 10 s extends the output beyond the nominal
        // duration instead of disappearing.
        assert_eq!(w.len(), 11);
        assert!(w[..10].iter().all(Vec::is_empty));
        assert_eq!(w[10], vec![p(10_000, 2)]);
    }

    #[test]
    fn corrupt_timestamp_extension_bounded() {
        // A mangled timestamp far in the future must not trigger a
        // gigabyte-scale resize; it is dropped as corrupt.
        let pkts = vec![p(0, 1), p(4_000_000_000_000, 2)];
        let w = windows_by_second(&pkts, 3, 1);
        assert!(w.len() <= 3 + MAX_EXTRA_WINDOWS);
        assert_eq!(w[0], vec![p(0, 1)]);
        assert_eq!(w.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn packet_exactly_at_duration_kept() {
        let pkts = vec![p(3_000, 7)];
        let w = windows_by_second(&pkts, 3, 1);
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], vec![p(3_000, 7)]);
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_rejected() {
        let _ = windows_by_second(&[], 3, 0);
    }
}
