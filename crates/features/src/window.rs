//! Windowing: slicing a packet stream into the prediction windows `W`
//! over which QoE is estimated (§2.2; default 1 second, swept in Fig. 12).

use vcaml_netpkt::Timestamp;

/// The minimal per-packet observation every IP/UDP method consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktObs {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// IP total length in bytes.
    pub size: u16,
}

/// Groups packets into consecutive fixed-length windows starting at t = 0.
///
/// Returns one entry per window covering `0..n_windows` where `n_windows =
/// ceil(duration / window_secs)` derived from `duration_secs`; windows with
/// no packets are empty vectors, so window index `i` always corresponds to
/// time `[i·w, (i+1)·w)`.
///
/// # Panics
/// Panics if `window_secs` is zero.
pub fn windows_by_second(
    pkts: &[PktObs],
    duration_secs: u32,
    window_secs: u32,
) -> Vec<Vec<PktObs>> {
    assert!(window_secs > 0, "zero window");
    let n_windows = duration_secs.div_ceil(window_secs) as usize;
    let mut out: Vec<Vec<PktObs>> = vec![Vec::new(); n_windows];
    let w_us = i64::from(window_secs) * 1_000_000;
    for p in pkts {
        let idx = p.ts.as_micros().div_euclid(w_us);
        if idx >= 0 && (idx as usize) < n_windows {
            out[idx as usize].push(*p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ms: i64, size: u16) -> PktObs {
        PktObs { ts: Timestamp::from_millis(ms), size }
    }

    #[test]
    fn one_second_windows() {
        let pkts = vec![p(100, 10), p(999, 20), p(1000, 30), p(2500, 40)];
        let w = windows_by_second(&pkts, 3, 1);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 2);
        assert_eq!(w[1], vec![p(1000, 30)]);
        assert_eq!(w[2], vec![p(2500, 40)]);
    }

    #[test]
    fn empty_windows_preserved() {
        let pkts = vec![p(2500, 40)];
        let w = windows_by_second(&pkts, 4, 1);
        assert_eq!(w.len(), 4);
        assert!(w[0].is_empty() && w[1].is_empty() && w[3].is_empty());
        assert_eq!(w[2].len(), 1);
    }

    #[test]
    fn wider_windows() {
        let pkts = vec![p(100, 1), p(1100, 2), p(2100, 3), p(3100, 4), p(4100, 5)];
        let w = windows_by_second(&pkts, 5, 2);
        assert_eq!(w.len(), 3); // ceil(5/2)
        assert_eq!(w[0].len(), 2);
        assert_eq!(w[1].len(), 2);
        assert_eq!(w[2].len(), 1);
    }

    #[test]
    fn out_of_range_packets_dropped() {
        let pkts = vec![p(-5, 1), p(10_000, 2)];
        let w = windows_by_second(&pkts, 3, 1);
        assert!(w.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn zero_window_rejected() {
        let _ = windows_by_second(&[], 3, 0);
    }
}
