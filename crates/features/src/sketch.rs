//! HyperLogLog distinct counting in strictly O(1) memory.
//!
//! [`StatsMode::Sketch`](crate::StatsMode) caps per-flow state at O(1);
//! the RTP feature family's unique-timestamp counts (`# unique RTPvid
//! TS`, `# unique RTPrtx TS`, union, intersection) are the last piece
//! whose exact form grows with the window's content. [`Hll`] replaces the
//! per-window hash sets with 256 one-byte registers: Flajolet et al.'s
//! estimator with linear-counting small-range correction, which for the
//! 30–3000 distinct timestamps a one-second VCA window produces operates
//! almost entirely in the (exact-leaning) linear-counting regime.
//!
//! Union is register-wise max; intersection comes from
//! inclusion–exclusion (`|A∩B| = |A| + |B| − |A∪B|`, clamped at 0).

/// Register-count exponent: 2^8 = 256 registers, one byte each.
const P: u32 = 8;
/// Number of registers.
const M: usize = 1 << P;

/// A fixed-size HyperLogLog sketch over `u32` values.
#[derive(Debug, Clone)]
pub struct Hll {
    registers: [u8; M],
}

impl Default for Hll {
    fn default() -> Self {
        Hll { registers: [0; M] }
    }
}

impl Hll {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Hll::default()
    }

    /// Offers one value (idempotent, as distinct counting requires).
    #[inline]
    pub fn insert(&mut self, value: u32) {
        // splitmix64 finalizer over the widened value: cheap and
        // well-distributed for the sequential RTP timestamps VCAs emit.
        let mut h = u64::from(value).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let idx = (h >> (64 - P)) as usize;
        // Rank of the first set bit in the remaining 56 bits (1-based).
        let rest = h << P;
        let rank = (rest.leading_zeros() + 1).min(64 - P + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct values offered.
    pub fn estimate(&self) -> f64 {
        estimate_registers(&self.registers)
    }

    /// Estimated size of the union with `other` (register-wise max).
    pub fn union_estimate(&self, other: &Hll) -> f64 {
        let mut merged = [0u8; M];
        for (m, (&a, &b)) in merged
            .iter_mut()
            .zip(self.registers.iter().zip(&other.registers))
        {
            *m = a.max(b);
        }
        estimate_registers(&merged)
    }

    /// Estimated size of the intersection with `other`
    /// (inclusion–exclusion, clamped at zero).
    pub fn intersect_estimate(&self, other: &Hll) -> f64 {
        (self.estimate() + other.estimate() - self.union_estimate(other)).max(0.0)
    }

    /// True when nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Clears the sketch in place (no allocation).
    pub fn clear(&mut self) {
        self.registers.fill(0);
    }
}

fn estimate_registers(registers: &[u8; M]) -> f64 {
    let m = M as f64;
    let mut sum = 0.0;
    let mut zeros = 0usize;
    for &r in registers {
        sum += f64::powi(2.0, -i32::from(r));
        if r == 0 {
            zeros += 1;
        }
    }
    // alpha_256 per Flajolet et al. (m >= 128 branch).
    let alpha = 0.7213 / (1.0 + 1.079 / m);
    let raw = alpha * m * m / sum;
    if raw <= 2.5 * m && zeros > 0 {
        // Linear counting: near-exact for the small cardinalities a
        // one-second window produces.
        m * (m / zeros as f64).ln()
    } else {
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = Hll::new();
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_counts_are_near_exact() {
        for n in [1u32, 5, 30, 60, 200] {
            let mut h = Hll::new();
            for i in 0..n {
                h.insert(i * 3000); // RTP-timestamp-like spacing
                h.insert(i * 3000); // duplicates must not inflate
            }
            let est = h.estimate();
            let err = (est - f64::from(n)).abs() / f64::from(n);
            // Linear counting at m=256: a few percent of standard error,
            // so allow a generous 3-sigma band.
            assert!(err < 0.12, "n={n} est={est}");
        }
    }

    #[test]
    fn union_and_intersection_track_set_algebra() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..100u32 {
            a.insert(i);
        }
        for i in 50..150u32 {
            b.insert(i);
        }
        let union = a.union_estimate(&b);
        let inter = a.intersect_estimate(&b);
        assert!((union - 150.0).abs() / 150.0 < 0.15, "union {union}");
        // Inclusion–exclusion compounds the three estimates' errors, so
        // the intersection band is proportional to the union size.
        assert!((inter - 50.0).abs() < 0.2 * 150.0, "intersect {inter}");
    }

    #[test]
    fn clear_resets_in_place() {
        let mut h = Hll::new();
        for i in 0..1000u32 {
            h.insert(i);
        }
        assert!(h.estimate() > 800.0);
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn large_counts_within_hll_error() {
        let mut h = Hll::new();
        for i in 0..50_000u32 {
            h.insert(i.wrapping_mul(2_654_435_761));
        }
        let est = h.estimate();
        let err = (est - 50_000.0).abs() / 50_000.0;
        // Standard error for m=256 is ~6.5%; allow 3 sigma.
        assert!(err < 0.20, "est {est}");
    }
}
