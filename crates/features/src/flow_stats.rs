//! Flow-level statistics (Table 1, first row): bytes/s, packets/s, and
//! five statistics each over packet sizes and inter-arrival times.
//!
//! The computation itself lives in [`crate::incremental::FlowFeatureAcc`];
//! the batch function here replays a window slice through that accumulator
//! so the batch and streaming paths share one implementation.

use crate::incremental::{FlowFeatureAcc, StatsMode};
use crate::stats::STAT_SUFFIXES;
use crate::window::PktObs;

/// Names of the 12 flow-level features, in vector order.
pub fn flow_feature_names() -> Vec<String> {
    let mut names = vec!["# bytes".to_string(), "# packets".to_string()];
    for s in STAT_SUFFIXES {
        names.push(format!("Size [{s}]"));
    }
    for s in STAT_SUFFIXES {
        names.push(format!("IAT [{s}]"));
    }
    names
}

/// Computes the 12 flow-level features over one window.
///
/// Sizes are in bytes; inter-arrival times in milliseconds; rates are
/// per-second (normalized by `window_secs`). Implemented as a replay over
/// the incremental accumulator.
pub fn flow_features(pkts: &[PktObs], window_secs: f64) -> Vec<f64> {
    let mut acc = FlowFeatureAcc::new(StatsMode::Exact);
    for p in pkts {
        acc.push(p.ts, p.size);
    }
    acc.features(window_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn p(ms: i64, size: u16) -> PktObs {
        PktObs {
            ts: Timestamp::from_millis(ms),
            size,
        }
    }

    #[test]
    fn names_and_width_agree() {
        assert_eq!(flow_feature_names().len(), 12);
        assert_eq!(flow_features(&[], 1.0).len(), 12);
    }

    #[test]
    fn rates_normalized_by_window() {
        let pkts = vec![p(0, 100), p(500, 300)];
        let f1 = flow_features(&pkts, 1.0);
        let f2 = flow_features(&pkts, 2.0);
        assert_eq!(f1[0], 400.0);
        assert_eq!(f2[0], 200.0);
        assert_eq!(f1[1], 2.0);
        assert_eq!(f2[1], 1.0);
    }

    #[test]
    fn size_stats_positions() {
        let pkts = vec![p(0, 100), p(10, 200), p(20, 300)];
        let f = flow_features(&pkts, 1.0);
        // mean, stdev, median, min, max at indices 2..7
        assert_eq!(f[2], 200.0);
        assert_eq!(f[4], 200.0);
        assert_eq!(f[5], 100.0);
        assert_eq!(f[6], 300.0);
    }

    #[test]
    fn iat_in_milliseconds() {
        let pkts = vec![p(0, 1), p(33, 1), p(66, 1)];
        let f = flow_features(&pkts, 1.0);
        assert_eq!(f[7], 33.0); // IAT mean
        assert_eq!(f[10], 33.0); // IAT min
        assert_eq!(f[11], 33.0); // IAT max
    }

    #[test]
    fn single_packet_iats_zero() {
        let f = flow_features(&[p(5, 700)], 1.0);
        assert_eq!(&f[7..12], &[0.0; 5]);
        assert_eq!(f[0], 700.0);
    }
}
