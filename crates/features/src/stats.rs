//! The five order statistics the paper computes over packet sizes and
//! inter-arrival times: mean, standard deviation, median, minimum, maximum.

/// Returns `[mean, stdev, median, min, max]`; all zeros for empty input.
pub fn five_stats(values: &[f64]) -> [f64; 5] {
    if values.is_empty() {
        return [0.0; 5];
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    [
        mean,
        var.sqrt(),
        median,
        sorted[0],
        sorted[sorted.len() - 1],
    ]
}

/// Suffixes used in feature names, matching the paper's plots
/// (`Size [mean]`, `IAT [stdev]`, ...).
pub const STAT_SUFFIXES: [&str; 5] = ["mean", "stdev", "median", "min", "max"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(five_stats(&[]), [0.0; 5]);
    }

    #[test]
    fn single_value() {
        assert_eq!(five_stats(&[4.0]), [4.0, 0.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn odd_median() {
        let s = five_stats(&[3.0, 1.0, 2.0]);
        assert_eq!(s[2], 2.0);
        assert_eq!(s[3], 1.0);
        assert_eq!(s[4], 3.0);
    }

    #[test]
    fn even_median_interpolates() {
        let s = five_stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s[2], 2.5);
    }

    #[test]
    fn stdev_population() {
        let s = five_stats(&[2.0, 4.0]);
        assert_eq!(s[0], 3.0);
        assert_eq!(s[1], 1.0); // population stdev
    }
}
