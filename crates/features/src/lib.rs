//! # vcaml-features — feature extraction (paper Table 1)
//!
//! Three feature families, computed per prediction window `W`:
//!
//! * **Flow-level statistics** (12): bytes/s, packets/s, and five order
//!   statistics each over packet sizes and inter-arrival times.
//! * **VCA-semantics features** (2): number of unique packet sizes and
//!   number of microbursts — the features derived from how VCAs fragment
//!   frames into packets (§3.2.2).
//! * **RTP features** (12): unique RTP timestamp counts over the video and
//!   retransmission streams plus their intersection/union, per-stream
//!   marker-bit sums, out-of-order sequence count, and five statistics of
//!   the RTP lag.
//!
//! `IP/UDP ML` uses the first two families (14 features); `RTP ML` uses
//! flow statistics + RTP features.
//!
//! Every formula is implemented **once**, as a single-pass accumulator in
//! [`incremental`] ([`FlowFeatureAcc`], [`IpUdpFeatureAcc`],
//! [`rtp_feats::RtpWindowAcc`]); the batch functions here replay slices
//! through those accumulators, and the streaming engine in `vcaml::engine`
//! feeds them packet by packet, so the two paths cannot diverge. (The
//! standalone [`semantics`] helpers keep simple slice forms of the two
//! VCA-semantics counts for direct use and as an independent oracle; an
//! equivalence test in [`incremental`] couples them to the accumulator.)
pub mod flow_stats;
pub mod incremental;
pub mod rtp_feats;
pub mod semantics;
pub mod sketch;
pub mod stats;
pub mod window;

pub use flow_stats::{flow_feature_names, flow_features};
pub use incremental::{FlowFeatureAcc, IpUdpFeatureAcc, P2Quantile, StatsMode};
pub use rtp_feats::{rtp_feature_names, RtpWindow, RtpWindowAcc};
pub use semantics::{microbursts, unique_sizes, DEFAULT_THETA_IAT_US};
pub use sketch::Hll;
pub use window::{windows_by_second, PktObs};

/// Feature names for the IP/UDP ML model (flow stats + semantics).
pub fn ipudp_feature_names() -> Vec<String> {
    let mut names = flow_feature_names();
    names.push("# unique sizes".to_string());
    names.push("# microbursts".to_string());
    names
}

/// The IP/UDP ML feature vector for one window of video-classified
/// packets (`window_secs` is the window length; `theta_iat_us` the
/// microburst inter-arrival threshold). Implemented as a replay over
/// [`IpUdpFeatureAcc`].
pub fn ipudp_features(pkts: &[PktObs], window_secs: f64, theta_iat_us: i64) -> Vec<f64> {
    assert!(window_secs > 0.0, "non-positive window");
    let mut acc = IpUdpFeatureAcc::new(StatsMode::Exact, theta_iat_us);
    for p in pkts {
        acc.push(p.ts, p.size);
    }
    acc.features(window_secs)
}
