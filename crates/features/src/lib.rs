//! # vcaml-features — feature extraction (paper Table 1)
//!
//! Three feature families, computed per prediction window `W`:
//!
//! * **Flow-level statistics** (12): bytes/s, packets/s, and five order
//!   statistics each over packet sizes and inter-arrival times.
//! * **VCA-semantics features** (2): number of unique packet sizes and
//!   number of microbursts — the features derived from how VCAs fragment
//!   frames into packets (§3.2.2).
//! * **RTP features** (12): unique RTP timestamp counts over the video and
//!   retransmission streams plus their intersection/union, per-stream
//!   marker-bit sums, out-of-order sequence count, and five statistics of
//!   the RTP lag.
//!
//! `IP/UDP ML` uses the first two families (14 features); `RTP ML` uses
//! flow statistics + RTP features.
pub mod flow_stats;
pub mod rtp_feats;
pub mod semantics;
pub mod stats;
pub mod window;

pub use flow_stats::{flow_feature_names, flow_features};
pub use rtp_feats::{rtp_feature_names, RtpWindow};
pub use semantics::{microbursts, unique_sizes, DEFAULT_THETA_IAT_US};
pub use window::{windows_by_second, PktObs};

/// Feature names for the IP/UDP ML model (flow stats + semantics).
pub fn ipudp_feature_names() -> Vec<String> {
    let mut names = flow_feature_names();
    names.push("# unique sizes".to_string());
    names.push("# microbursts".to_string());
    names
}

/// The IP/UDP ML feature vector for one window of video-classified
/// packets (`window_secs` is the window length; `theta_iat_us` the
/// microburst inter-arrival threshold).
pub fn ipudp_features(pkts: &[PktObs], window_secs: f64, theta_iat_us: i64) -> Vec<f64> {
    let mut v = flow_features(pkts, window_secs);
    v.push(unique_sizes(pkts));
    v.push(microbursts(pkts, theta_iat_us));
    v
}
