//! Incremental (single-pass) feature accumulators.
//!
//! This module is the *one* implementation of the per-window feature
//! formulas of Table 1. The batch entry points ([`crate::flow_features`],
//! [`crate::ipudp_features`], [`crate::RtpWindow::features`]) are thin
//! wrappers that replay a slice through these accumulators, and the
//! streaming engine in `vcaml::engine` feeds them packet by packet — so
//! batch and streaming cannot drift apart.
//!
//! Two accumulation modes are offered:
//!
//! * [`StatsMode::Exact`] (default) keeps a value histogram per window
//!   (bounded by the window's distinct values) and reproduces the batch
//!   order statistics exactly — including exact medians.
//! * [`StatsMode::Sketch`] keeps strictly O(1) state per flow: Welford
//!   mean/variance plus a P² quantile sketch for medians, trading exact
//!   medians for constant memory (the "streaming versions of the methods"
//!   deployment shape of §7).
//!
//! ```
//! use vcaml_features::incremental::{IpUdpFeatureAcc, P2Quantile};
//! use vcaml_features::{ipudp_features, PktObs, StatsMode, DEFAULT_THETA_IAT_US};
//! use vcaml_netpkt::Timestamp;
//!
//! // One second of video-sized packets, 60 per second.
//! let pkts: Vec<PktObs> = (0..60)
//!     .map(|i| PktObs {
//!         ts: Timestamp::from_micros(i * 16_667),
//!         size: 1_000 + (i % 7) as u16,
//!     })
//!     .collect();
//!
//! // Single-pass accumulation…
//! let mut acc = IpUdpFeatureAcc::new(StatsMode::Exact, DEFAULT_THETA_IAT_US);
//! for p in &pkts {
//!     acc.push(p.ts, p.size);
//! }
//! let streamed = acc.features(1.0);
//!
//! // …is exactly the batch formula (the batch entry point replays
//! // through this accumulator).
//! assert_eq!(streamed, ipudp_features(&pkts, 1.0, DEFAULT_THETA_IAT_US));
//! assert_eq!(streamed.len(), 14, "Table 1's IP/UDP feature vector");
//!
//! // The P² sketch estimates quantiles in O(1) memory: exact for its
//! // first five observations, approximate afterwards.
//! let mut median = P2Quantile::new(0.5);
//! for x in [1.0, 9.0, 5.0, 3.0, 7.0] {
//!     median.push(x);
//! }
//! assert_eq!(median.estimate(), 5.0);
//! ```

use vcaml_netpkt::Timestamp;

/// How order statistics are accumulated per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum StatsMode {
    /// Per-window value histograms; exact parity with the batch formulas.
    #[default]
    Exact,
    /// O(1) state: Welford variance + P² median sketch (bounded error).
    Sketch,
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac (1985): five markers, O(1) memory, no buffering. Exact for
/// the first five observations, approximate afterwards.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile out of (0,1)");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Offers one observation.
    // lint: hot_path
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;
        // Cell index k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = new_h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate (`0.0` before any observation).
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => 0.0,
            n if n <= 5 => {
                let mut buf = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.total_cmp(b));
                let rank = self.p * (n - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                if lo == hi {
                    buf[lo]
                } else {
                    // Linear rank interpolation (reduces to the median
                    // midpoint for p = 0.5 and even counts).
                    buf[lo] + (rank - lo as f64) * (buf[hi] - buf[lo])
                }
            }
            _ => self.heights[2],
        }
    }
}

/// One five-statistic stream (`[mean, stdev, median, min, max]`) over
/// integer-keyed values decoded by a fixed scale.
///
/// Exact mode appends raw values to an *unsorted log* and defers all
/// ordering work to the once-per-window [`StatAcc::five`] call — the
/// same cost structure as the batch path, which sorts each window slice
/// once in `five_stats`. A per-push sorted insert was measured at
/// ~10–20× the append cost on IAT streams (hundreds of distinct values
/// per window ⇒ an `O(n)` memmove per packet). Critically for the
/// zero-allocation steady state, [`StatAcc::reset`] retains the log's
/// capacity, so after warmup no push allocates.
#[derive(Debug, Clone)]
struct StatAcc {
    mode: StatsMode,
    divisor: f64,
    n: u64,
    sum: f64,
    min_raw: i64,
    max_raw: i64,
    vals: Vec<i64>,
    // Sketch-mode state.
    mean: f64,
    m2: f64,
    p2: P2Quantile,
}

impl StatAcc {
    fn new(mode: StatsMode, divisor: f64) -> Self {
        StatAcc {
            mode,
            divisor,
            n: 0,
            sum: 0.0,
            min_raw: i64::MAX,
            max_raw: i64::MIN,
            vals: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            p2: P2Quantile::new(0.5),
        }
    }

    fn decode(&self, raw: i64) -> f64 {
        // Division, not multiplication by the inexact reciprocal: this is
        // bit-identical to `Timestamp::as_millis_f64` (`µs / 1e3`). The
        // unit-divisor case (sizes) skips the divide — `x / 1.0 == x`
        // exactly, and the batch path never divides sizes either.
        if self.divisor == 1.0 {
            raw as f64
        } else {
            raw as f64 / self.divisor
        }
    }

    // lint: hot_path
    fn push(&mut self, raw: i64) {
        match self.mode {
            // Exact mode defers every statistic to the once-per-seal
            // `five` pass; the per-packet cost is one append.
            StatsMode::Exact => self.vals.push(raw),
            StatsMode::Sketch => {
                let v = self.decode(raw);
                self.n += 1;
                self.sum += v;
                self.min_raw = self.min_raw.min(raw);
                self.max_raw = self.max_raw.max(raw);
                let delta = v - self.mean;
                self.mean += delta / self.n as f64;
                self.m2 += delta * (v - self.mean);
                self.p2.push(v);
            }
        }
    }

    /// Clears the window without releasing value-log capacity (the
    /// steady-state per-packet path must not allocate).
    fn reset(&mut self) {
        self.n = 0;
        self.sum = 0.0;
        self.min_raw = i64::MAX;
        self.max_raw = i64::MIN;
        self.vals.clear();
        self.mean = 0.0;
        self.m2 = 0.0;
        self.p2 = P2Quantile::new(0.5);
    }

    /// Heap bytes currently held (capacity, not length).
    fn heap_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<i64>()
    }

    /// Values pushed this window.
    fn count(&self) -> u64 {
        match self.mode {
            StatsMode::Exact => self.vals.len() as u64,
            StatsMode::Sketch => self.n,
        }
    }

    /// Arrival-order sum of decoded values — bit-identical to a running
    /// `+=` per push, since both reduce the same sequence left-to-right.
    fn total(&self) -> f64 {
        match self.mode {
            StatsMode::Exact => self.vals.iter().map(|&raw| self.decode(raw)).sum(),
            StatsMode::Sketch => self.sum,
        }
    }

    /// `[mean, stdev, median, min, max]`, zeros when empty — the same
    /// contract as [`crate::stats::five_stats`].
    fn five(&self) -> [f64; 5] {
        match self.mode {
            StatsMode::Exact => self.five_exact(),
            StatsMode::Sketch => {
                if self.n == 0 {
                    return [0.0; 5];
                }
                let n = self.n as f64;
                [
                    self.sum / n,
                    (self.m2 / n).sqrt(),
                    self.p2.estimate(),
                    self.decode(self.min_raw),
                    self.decode(self.max_raw),
                ]
            }
        }
    }

    /// Replays `five_stats` over the arrival-ordered value log: the same
    /// summation order (mean and variance are bit-identical to the batch
    /// slice) and the same sorted-slice median/min/max. `decode` is
    /// monotonic, so sorting raw integers picks the same elements as
    /// sorting the decoded values. The scratch copy and the two passes
    /// are a once-per-seal cost, matching the batch path's.
    fn five_exact(&self) -> [f64; 5] {
        if self.vals.is_empty() {
            return [0.0; 5];
        }
        let n = self.vals.len() as f64;
        let mean = self.vals.iter().map(|&raw| self.decode(raw)).sum::<f64>() / n;
        let var = self
            .vals
            .iter()
            .map(|&raw| (self.decode(raw) - mean).powi(2))
            .sum::<f64>()
            / n;
        let mut sorted = self.vals.clone();
        sorted.sort_unstable();
        let median = if sorted.len() % 2 == 1 {
            self.decode(sorted[sorted.len() / 2])
        } else {
            (self.decode(sorted[sorted.len() / 2 - 1]) + self.decode(sorted[sorted.len() / 2]))
                / 2.0
        };
        [
            mean,
            var.sqrt(),
            median,
            self.decode(sorted[0]),
            self.decode(sorted[sorted.len() - 1]),
        ]
    }
}

/// Incremental computation of the 12 flow-level features
/// ([`crate::flow_features`]) for one window.
#[derive(Debug, Clone)]
pub struct FlowFeatureAcc {
    sizes: StatAcc,
    iats: StatAcc,
    prev_ts: Option<Timestamp>,
}

impl FlowFeatureAcc {
    /// Creates an empty accumulator.
    pub fn new(mode: StatsMode) -> Self {
        FlowFeatureAcc {
            sizes: StatAcc::new(mode, 1.0),
            // IATs are stored as whole microseconds and decoded to
            // milliseconds, matching `Timestamp::as_millis_f64`.
            iats: StatAcc::new(mode, 1e3),
            prev_ts: None,
        }
    }

    /// Offers one packet (arrival order). Byte and packet totals are
    /// derived from the size stream at seal time, keeping this hot call
    /// to two appends and a timestamp save.
    // lint: hot_path
    pub fn push(&mut self, ts: Timestamp, size: u16) {
        self.sizes.push(i64::from(size));
        if let Some(prev) = self.prev_ts {
            self.iats.push((ts - prev).as_micros());
        }
        self.prev_ts = Some(ts);
    }

    /// Packets offered so far this window.
    pub fn packets(&self) -> u64 {
        self.sizes.count()
    }

    /// Emits the 12 features for the current window.
    pub fn features(&self, window_secs: f64) -> Vec<f64> {
        assert!(window_secs > 0.0, "non-positive window");
        let mut v = Vec::with_capacity(12);
        v.push(self.sizes.total() / window_secs);
        v.push(self.sizes.count() as f64 / window_secs);
        v.extend_from_slice(&self.sizes.five());
        v.extend_from_slice(&self.iats.five());
        v
    }

    /// Clears per-window state (IAT chains do not span windows, matching
    /// the batch slice semantics). Value-log capacity is retained so the
    /// steady state stays allocation-free.
    pub fn reset(&mut self) {
        self.sizes.reset();
        self.iats.reset();
        self.prev_ts = None;
    }

    /// Estimated bytes of state held by this accumulator (inline struct
    /// plus heap capacity), for per-flow memory accounting.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.sizes.heap_bytes() + self.iats.heap_bytes()
    }
}

/// Incremental computation of the full 14-feature IP/UDP ML vector
/// ([`crate::ipudp_features`]): flow features plus the two VCA-semantics
/// features (`# unique sizes`, `# microbursts`).
#[derive(Debug, Clone)]
pub struct IpUdpFeatureAcc {
    flow: FlowFeatureAcc,
    theta_iat_us: i64,
    /// Bitset over the u16 size domain: exact distinct-size counting in
    /// O(1) memory for both modes.
    size_seen: Box<[u64; 1024]>,
    unique_sizes: u64,
    bursts: u64,
    prev_ts: Option<Timestamp>,
}

impl IpUdpFeatureAcc {
    /// Creates an empty accumulator with the microburst threshold.
    pub fn new(mode: StatsMode, theta_iat_us: i64) -> Self {
        assert!(theta_iat_us > 0, "non-positive theta");
        IpUdpFeatureAcc {
            flow: FlowFeatureAcc::new(mode),
            theta_iat_us,
            size_seen: Box::new([0u64; 1024]),
            unique_sizes: 0,
            bursts: 0,
            prev_ts: None,
        }
    }

    /// Offers one video-classified packet (arrival order).
    // lint: hot_path
    pub fn push(&mut self, ts: Timestamp, size: u16) {
        self.flow.push(ts, size);
        let (word, bit) = (usize::from(size) / 64, usize::from(size) % 64);
        if self.size_seen[word] & (1 << bit) == 0 {
            self.size_seen[word] |= 1 << bit;
            self.unique_sizes += 1;
        }
        match self.prev_ts {
            None => self.bursts = 1,
            Some(prev) if (ts - prev).as_micros() >= self.theta_iat_us => self.bursts += 1,
            Some(_) => {}
        }
        self.prev_ts = Some(ts);
    }

    /// Packets offered so far this window.
    pub fn packets(&self) -> u64 {
        self.flow.packets()
    }

    /// Emits the 14 features for the current window.
    pub fn features(&self, window_secs: f64) -> Vec<f64> {
        let mut v = self.flow.features(window_secs);
        v.push(self.unique_sizes as f64);
        v.push(self.bursts as f64);
        v
    }

    /// Clears per-window state.
    pub fn reset(&mut self) {
        self.flow.reset();
        self.size_seen.fill(0);
        self.unique_sizes = 0;
        self.bursts = 0;
        self.prev_ts = None;
    }

    /// Estimated bytes of state held by this accumulator (inline struct,
    /// the size bitset, and histogram heap capacity).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + std::mem::size_of::<[u64; 1024]>()
            + (self.flow.state_bytes() - std::mem::size_of::<FlowFeatureAcc>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::PktObs;
    use crate::{flow_features, ipudp_features};

    fn pkts(spec: &[(i64, u16)]) -> Vec<PktObs> {
        spec.iter()
            .map(|&(us, size)| PktObs {
                ts: Timestamp::from_micros(us),
                size,
            })
            .collect()
    }

    fn run_acc(mode: StatsMode, ps: &[PktObs], w: f64) -> Vec<f64> {
        let mut acc = FlowFeatureAcc::new(mode);
        for p in ps {
            acc.push(p.ts, p.size);
        }
        acc.features(w)
    }

    #[test]
    fn exact_mode_matches_batch_formula() {
        let ps = pkts(&[
            (0, 1100),
            (300, 1102),
            (33_000, 890),
            (33_400, 893),
            (66_100, 1250),
            (99_000, 700),
            (99_001, 701),
        ]);
        let batch = flow_features(&ps, 1.0);
        let inc = run_acc(StatsMode::Exact, &ps, 1.0);
        assert_eq!(batch.len(), inc.len());
        for (i, (b, x)) in batch.iter().zip(&inc).enumerate() {
            assert!(
                (b - x).abs() <= 1e-9 * b.abs().max(1.0),
                "feature {i}: {b} vs {x}"
            );
        }
    }

    #[test]
    fn sketch_mode_bounded_error() {
        let ps: Vec<PktObs> = (0..500)
            .map(|i| PktObs {
                ts: Timestamp::from_micros(i * 997),
                size: 600 + ((i * 37) % 700) as u16,
            })
            .collect();
        let batch = flow_features(&ps, 1.0);
        let inc = run_acc(StatsMode::Sketch, &ps, 1.0);
        for (i, (b, x)) in batch.iter().zip(&inc).enumerate() {
            let tol = if i == 4 || i == 9 {
                // Medians come from the P² sketch: bounded, not exact.
                0.10 * b.abs().max(1.0)
            } else {
                1e-6 * b.abs().max(1.0)
            };
            assert!((b - x).abs() <= tol, "feature {i}: batch {b} vs sketch {x}");
        }
    }

    #[test]
    fn ipudp_acc_matches_batch_formula() {
        let ps = pkts(&[
            (0, 1000),
            (200, 1000),
            (40_000, 850),
            (40_300, 852),
            (80_000, 1000),
        ]);
        let batch = ipudp_features(&ps, 1.0, 3_000);
        let mut acc = IpUdpFeatureAcc::new(StatsMode::Exact, 3_000);
        for p in &ps {
            acc.push(p.ts, p.size);
        }
        let inc = acc.features(1.0);
        for (i, (b, x)) in batch.iter().zip(&inc).enumerate() {
            assert!(
                (b - x).abs() <= 1e-9 * b.abs().max(1.0),
                "feature {i}: {b} vs {x}"
            );
        }
        // 3 bursts (gaps of 39.8 ms and 39.7 ms), 3 unique sizes.
        assert_eq!(inc[12], 3.0);
        assert_eq!(inc[13], 3.0);
    }

    #[test]
    fn semantics_counters_match_batch_functions() {
        // The accumulator's inline unique-size/microburst counters must
        // equal the standalone batch formulas in `semantics` on arbitrary
        // windows (they are separate implementations; this test couples
        // them).
        use crate::semantics::{microbursts, unique_sizes};
        let mut ps = Vec::new();
        let mut t = 0i64;
        for i in 0..300i64 {
            t += if i % 7 == 0 {
                30_000
            } else {
                (i * 131) % 2_900
            };
            ps.push(PktObs {
                ts: Timestamp::from_micros(t),
                size: 500 + ((i * 53) % 800) as u16,
            });
        }
        let mut acc = IpUdpFeatureAcc::new(StatsMode::Exact, 3_000);
        for p in &ps {
            acc.push(p.ts, p.size);
        }
        let f = acc.features(1.0);
        assert_eq!(f[12], unique_sizes(&ps));
        assert_eq!(f[13], microbursts(&ps, 3_000));
    }

    #[test]
    fn reset_clears_window_state() {
        let mut acc = IpUdpFeatureAcc::new(StatsMode::Exact, 3_000);
        acc.push(Timestamp::ZERO, 1000);
        acc.push(Timestamp::from_millis(50), 900);
        acc.reset();
        assert_eq!(acc.features(1.0), ipudp_features(&[], 1.0, 3_000));
        // IAT chain must not span the reset.
        acc.push(Timestamp::from_millis(100), 800);
        let f = acc.features(1.0);
        assert_eq!(f[1], 1.0); // one packet
        assert_eq!(&f[7..12], &[0.0; 5]); // no IATs yet
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut q = P2Quantile::new(0.5);
        for v in [5.0, 1.0, 3.0] {
            q.push(v);
        }
        assert_eq!(q.estimate(), 3.0);
        q.push(9.0);
        assert_eq!(q.estimate(), 4.0); // (3+5)/2
    }

    #[test]
    fn p2_converges_on_uniform() {
        let mut q = P2Quantile::new(0.5);
        for i in 0..10_000 {
            q.push(((i * 7919) % 10_000) as f64);
        }
        let est = q.estimate();
        assert!((est - 5_000.0).abs() < 250.0, "median estimate {est}");
    }

    #[test]
    fn empty_accumulator_is_all_zeros() {
        assert_eq!(run_acc(StatsMode::Exact, &[], 1.0), vec![0.0; 12]);
        assert_eq!(run_acc(StatsMode::Sketch, &[], 1.0), vec![0.0; 12]);
    }
}
