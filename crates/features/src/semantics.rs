//! VCA-semantics features (Table 1, second row): the two features derived
//! from how VCAs fragment frames into packets.
//!
//! * `# unique sizes` — frames are fragmented into equal-size packets, so
//!   the number of distinct packet sizes in a window tracks the number of
//!   frames (the paper's single most important frame-rate feature, §5.1.2).
//! * `# microbursts` — a frame is transmitted as a back-to-back burst; a
//!   new burst starts whenever the inter-arrival gap reaches the threshold
//!   `θ_IAT`.

use crate::window::PktObs;
use std::collections::HashSet;

/// Default microburst inter-arrival threshold: 3 ms. Intra-frame gaps are
/// sub-millisecond at the sender and stay small after the bottleneck;
/// inter-frame gaps at ≤30 fps are ≥33 ms.
pub const DEFAULT_THETA_IAT_US: i64 = 3_000;

/// Number of distinct packet sizes in the window.
pub fn unique_sizes(pkts: &[PktObs]) -> f64 {
    let set: HashSet<u16> = pkts.iter().map(|p| p.size).collect();
    set.len() as f64
}

/// Number of microbursts: maximal runs of consecutive packets whose gaps
/// are below `theta_iat_us`. Equivalently, one plus the number of gaps
/// `≥ θ` (zero for an empty window).
pub fn microbursts(pkts: &[PktObs], theta_iat_us: i64) -> f64 {
    assert!(theta_iat_us > 0, "non-positive theta");
    if pkts.is_empty() {
        return 0.0;
    }
    let breaks = pkts
        .windows(2)
        .filter(|w| (w[1].ts - w[0].ts).as_micros() >= theta_iat_us)
        .count();
    (breaks + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn p(us: i64, size: u16) -> PktObs {
        PktObs {
            ts: Timestamp::from_micros(us),
            size,
        }
    }

    #[test]
    fn unique_sizes_counts_distinct() {
        assert_eq!(unique_sizes(&[]), 0.0);
        assert_eq!(unique_sizes(&[p(0, 100), p(1, 100), p(2, 101)]), 2.0);
    }

    #[test]
    fn one_burst_when_gaps_small() {
        let pkts = vec![p(0, 1), p(200, 1), p(400, 1)];
        assert_eq!(microbursts(&pkts, DEFAULT_THETA_IAT_US), 1.0);
    }

    #[test]
    fn bursts_split_on_large_gap() {
        // Two frames 33 ms apart, each a 3-packet burst.
        let pkts = vec![
            p(0, 1),
            p(250, 1),
            p(500, 1),
            p(33_000, 1),
            p(33_250, 1),
            p(33_500, 1),
        ];
        assert_eq!(microbursts(&pkts, DEFAULT_THETA_IAT_US), 2.0);
    }

    #[test]
    fn empty_window_zero_bursts() {
        assert_eq!(microbursts(&[], DEFAULT_THETA_IAT_US), 0.0);
    }

    #[test]
    fn single_packet_one_burst() {
        assert_eq!(microbursts(&[p(5, 9)], DEFAULT_THETA_IAT_US), 1.0);
    }

    #[test]
    fn gap_exactly_theta_breaks() {
        let pkts = vec![p(0, 1), p(3_000, 1)];
        assert_eq!(microbursts(&pkts, 3_000), 2.0);
        assert_eq!(microbursts(&pkts, 3_001), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-positive theta")]
    fn zero_theta_rejected() {
        let _ = microbursts(&[], 0);
    }
}
