//! RTP-header features (Table 1, third row), used by the RTP ML baseline.

use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use vcaml_netpkt::Timestamp;
use vcaml_rtp::{RtpClock, RtpHeader};

use crate::incremental::P2Quantile;
use crate::sketch::Hll;
use crate::stats::{five_stats, STAT_SUFFIXES};
use crate::StatsMode;

/// Open frames retained in [`StatsMode::Sketch`]: a frame older than the
/// last `FRAME_RING` first-arrivals is considered complete and its lag is
/// folded into the streaming statistics. VCAs interleave at most a few
/// frames, so 64 is far beyond any real reordering depth.
const FRAME_RING: usize = 64;

/// Names of the 12 RTP features, in vector order.
pub fn rtp_feature_names() -> Vec<String> {
    let mut names = vec![
        "# unique RTPvid TS".to_string(),
        "# unique RTPrtx TS".to_string(),
        "# RTP TS [intersect]".to_string(),
        "# RTP TS [union]".to_string(),
        "Markervid bit sum".to_string(),
        "Markerrtx bit sum".to_string(),
        "# out-of-order seq".to_string(),
    ];
    for s in STAT_SUFFIXES {
        names.push(format!("RTP lag [{s}]"));
    }
    names
}

/// Session-level reference for RTP-lag computation: the first video
/// frame's arrival time and RTP timestamp ("we assume that the first
/// frame had zero delay", §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LagReference {
    /// Arrival time of the first frame.
    pub t0: Timestamp,
    /// RTP timestamp of the first frame.
    pub ts0: u32,
}

/// The RTP packets of one prediction window, split by stream.
#[derive(Debug, Clone, Default)]
pub struct RtpWindow {
    /// Video-stream packets: (arrival, header).
    pub video: Vec<(Timestamp, RtpHeader)>,
    /// Retransmission-stream packets.
    pub rtx: Vec<(Timestamp, RtpHeader)>,
}

impl RtpWindow {
    /// Computes the 12 RTP features by replaying the window through the
    /// incremental [`RtpWindowAcc`] (the single implementation shared with
    /// the streaming engine). `lag_ref` anchors the RTP-lag clock; if
    /// `None`, the window's first video packet is used.
    pub fn features(&self, lag_ref: Option<LagReference>) -> Vec<f64> {
        let mut acc = RtpWindowAcc::new();
        for (t, h) in &self.video {
            acc.push_video(*t, h);
        }
        for (t, h) in &self.rtx {
            acc.push_rtx(*t, h);
        }
        acc.features(lag_ref)
    }
}

/// Streaming five-statistic summary over frame lags: Welford
/// mean/variance, P² median, exact min/max. O(1) memory; only used in
/// [`StatsMode::Sketch`] where exact per-frame retention is disallowed.
#[derive(Debug, Clone)]
struct LagStream {
    n: u64,
    mean: f64,
    m2: f64,
    p2: P2Quantile,
    min: f64,
    max: f64,
}

impl Default for LagStream {
    fn default() -> Self {
        LagStream {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            p2: P2Quantile::new(0.5),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LagStream {
    // lint: hot_path
    fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.p2.push(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn five(&self) -> [f64; 5] {
        if self.n == 0 {
            return [0.0; 5];
        }
        [
            self.mean,
            (self.m2 / self.n as f64).sqrt(),
            self.p2.estimate(),
            self.min,
            self.max,
        ]
    }

    fn clear(&mut self) {
        *self = LagStream::default();
    }
}

/// Incremental accumulator for the 12 RTP features of one window.
///
/// In [`StatsMode::Exact`] (the default, and what [`RtpWindowAcc::new`]
/// builds) state is bounded by the window's content — unique timestamp
/// sets and one entry per frame — and the batch formulas are reproduced
/// exactly. In [`StatsMode::Sketch`] the per-flow state is strictly O(1):
/// unique-timestamp counts come from [`Hll`] sketches, and frames beyond
/// a fixed ring are folded into streaming lag statistics. Resets retain
/// capacity, keeping the steady-state per-packet path allocation-free.
#[derive(Debug, Clone)]
pub struct RtpWindowAcc {
    mode: StatsMode,
    vid_ts: HashSet<u32>,
    rtx_ts: HashSet<u32>,
    vid_sketch: Hll,
    rtx_sketch: Hll,
    marker_vid: u64,
    marker_rtx: u64,
    last_vid_seq: Option<u16>,
    ooo: u64,
    /// Frames in first-arrival order: (RTP timestamp, completion time).
    /// Exact mode: every frame of the window. Sketch mode: a ring of the
    /// last [`FRAME_RING`] frames; older frames spill into `lag_stream`.
    frames: VecDeque<(u32, Timestamp)>,
    /// Sketch mode: streaming lag statistics over spilled frames.
    lag_stream: LagStream,
    /// Sketch mode: the anchor spilled lags were computed against
    /// (session anchor when [`RtpWindowAcc::set_lag_anchor`] was called,
    /// else the window's first frame).
    anchor: Option<LagReference>,
}

impl Default for RtpWindowAcc {
    fn default() -> Self {
        RtpWindowAcc::with_mode(StatsMode::Exact)
    }
}

impl RtpWindowAcc {
    /// Creates an empty accumulator in [`StatsMode::Exact`].
    pub fn new() -> Self {
        RtpWindowAcc::default()
    }

    /// Creates an empty accumulator in the given mode.
    pub fn with_mode(mode: StatsMode) -> Self {
        RtpWindowAcc {
            mode,
            vid_ts: HashSet::new(),
            rtx_ts: HashSet::new(),
            vid_sketch: Hll::new(),
            rtx_sketch: Hll::new(),
            marker_vid: 0,
            marker_rtx: 0,
            last_vid_seq: None,
            ooo: 0,
            frames: VecDeque::new(),
            lag_stream: LagStream::default(),
            anchor: None,
        }
    }

    /// Pins the session-level lag anchor (Sketch mode): spilled frames'
    /// lags are computed against it immediately, so the engine must call
    /// this with the same reference it later passes to
    /// [`RtpWindowAcc::features`]. Exact mode ignores it (lags are
    /// computed lazily from retained frames).
    pub fn set_lag_anchor(&mut self, anchor: LagReference) {
        self.anchor.get_or_insert(anchor);
    }

    /// Offers one video-stream packet (arrival order).
    // lint: hot_path
    pub fn push_video(&mut self, t: Timestamp, h: &RtpHeader) {
        match self.mode {
            StatsMode::Exact => {
                // lint: allow(hot-path-alloc) -- Exact mode trades allocation for exactness; the zero-alloc contract covers Sketch mode (tests/hot_path.rs)
                self.vid_ts.insert(h.timestamp);
            }
            // lint: allow(hot-path-alloc) -- fixed-width sketch insert mutates O(1) state; no container growth
            StatsMode::Sketch => self.vid_sketch.insert(h.timestamp),
        }
        if h.marker {
            self.marker_vid += 1;
        }
        // Out-of-order: discontinuities in the video sequence numbers in
        // arrival order ("total number of discontinuities in video packet
        // RTP sequence numbers", §3.3); pairs never span windows.
        if let Some(prev) = self.last_vid_seq {
            if h.sequence != prev.wrapping_add(1) {
                self.ooo += 1;
            }
        }
        self.last_vid_seq = Some(h.sequence);
        // Frame completion time = last arrival per unique RTP timestamp.
        match self.frames.iter_mut().find(|(ts, _)| *ts == h.timestamp) {
            Some((_, done)) => *done = (*done).max(t),
            None => {
                if self.anchor.is_none() {
                    // Window-local fallback anchor: the first frame, as
                    // the exact path's lazy computation uses.
                    self.anchor = Some(LagReference {
                        t0: t,
                        ts0: h.timestamp,
                    });
                }
                self.frames.push_back((h.timestamp, t));
                if self.mode == StatsMode::Sketch && self.frames.len() > FRAME_RING {
                    let (ts, done) = self.frames.pop_front().expect("len checked"); // lint: allow(no-unwrap-in-lib) -- loop guard holds frames.len() > depth, so the deque is non-empty
                    let a = self.anchor.expect("anchor set with first frame"); // lint: allow(no-unwrap-in-lib) -- anchor is recorded when the first frame is pushed; frames is non-empty here
                    let lag = RtpClock::video().lag_secs(a.t0, a.ts0, done, ts) * 1000.0;
                    self.lag_stream.push(lag);
                }
            }
        }
    }

    /// Offers one retransmission-stream packet (arrival order).
    // lint: hot_path
    pub fn push_rtx(&mut self, _t: Timestamp, h: &RtpHeader) {
        match self.mode {
            StatsMode::Exact => {
                // lint: allow(hot-path-alloc) -- Exact mode trades allocation for exactness; the zero-alloc contract covers Sketch mode (tests/hot_path.rs)
                self.rtx_ts.insert(h.timestamp);
            }
            // lint: allow(hot-path-alloc) -- fixed-width sketch insert mutates O(1) state; no container growth
            StatsMode::Sketch => self.rtx_sketch.insert(h.timestamp),
        }
        if h.marker {
            self.marker_rtx += 1;
        }
    }

    /// True when no packet has been offered this window.
    pub fn is_empty(&self) -> bool {
        match self.mode {
            StatsMode::Exact => self.vid_ts.is_empty() && self.rtx_ts.is_empty(),
            StatsMode::Sketch => self.vid_sketch.is_empty() && self.rtx_sketch.is_empty(),
        }
    }

    /// Emits the 12 features for the current window.
    pub fn features(&self, lag_ref: Option<LagReference>) -> Vec<f64> {
        let (vid, rtx, intersect, union) = match self.mode {
            StatsMode::Exact => (
                self.vid_ts.len() as f64,
                self.rtx_ts.len() as f64,
                self.vid_ts.intersection(&self.rtx_ts).count() as f64,
                self.vid_ts.union(&self.rtx_ts).count() as f64,
            ),
            StatsMode::Sketch => (
                self.vid_sketch.estimate().round(),
                self.rtx_sketch.estimate().round(),
                self.vid_sketch.intersect_estimate(&self.rtx_sketch).round(),
                self.vid_sketch.union_estimate(&self.rtx_sketch).round(),
            ),
        };
        let mut v = Vec::with_capacity(12);
        v.push(vid);
        v.push(rtx);
        v.push(intersect);
        v.push(union);
        v.push(self.marker_vid as f64);
        v.push(self.marker_rtx as f64);
        v.push(self.ooo as f64);
        v.extend_from_slice(&self.lag_five(lag_ref));
        v
    }

    /// Clears per-window state in place; set and frame capacity is
    /// retained so steady-state pushes stay allocation-free.
    pub fn reset(&mut self) {
        self.vid_ts.clear();
        self.rtx_ts.clear();
        self.vid_sketch.clear();
        self.rtx_sketch.clear();
        self.marker_vid = 0;
        self.marker_rtx = 0;
        self.last_vid_seq = None;
        self.ooo = 0;
        self.frames.clear();
        self.lag_stream.clear();
        self.anchor = None;
    }

    /// Estimated bytes of state held (inline struct plus heap capacity),
    /// for per-flow memory accounting.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.vid_ts.capacity() + self.rtx_ts.capacity()) * std::mem::size_of::<u32>()
            + self.frames.capacity() * std::mem::size_of::<(u32, Timestamp)>()
    }

    /// Five lag statistics `[mean, stdev, median, min, max]`.
    fn lag_five(&self, lag_ref: Option<LagReference>) -> [f64; 5] {
        if self.frames.is_empty() && self.lag_stream.n == 0 {
            return [0.0; 5];
        }
        let anchor = lag_ref
            .or(self.anchor)
            .expect("anchor recorded with first frame"); // lint: allow(no-unwrap-in-lib) -- anchor is recorded when the first frame is pushed
        let clock = RtpClock::video();
        match self.mode {
            StatsMode::Exact => {
                let lags: Vec<f64> = self
                    .frames
                    .iter()
                    .map(|(ts, t)| clock.lag_secs(anchor.t0, anchor.ts0, *t, *ts) * 1000.0)
                    .collect();
                five_stats(&lags)
            }
            StatsMode::Sketch => {
                // Fold the still-ringed frames into a copy of the spilled
                // stream (boundary-time work, not per-packet).
                let mut all = self.lag_stream.clone();
                for (ts, t) in &self.frames {
                    all.push(clock.lag_secs(anchor.t0, anchor.ts0, *t, *ts) * 1000.0);
                }
                all.five()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(seq: u16, ts: u32, marker: bool) -> RtpHeader {
        RtpHeader::basic(102, seq, ts, 1, marker)
    }

    fn at(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn names_and_width_agree() {
        assert_eq!(rtp_feature_names().len(), 12);
        assert_eq!(RtpWindow::default().features(None).len(), 12);
    }

    #[test]
    fn unique_ts_counts() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(0, 100, false)),
                (at(1), hdr(1, 100, true)),
                (at(33), hdr(2, 200, true)),
            ],
            rtx: vec![(at(50), hdr(0, 100, false)), (at(51), hdr(1, 300, false))],
        };
        let f = w.features(None);
        assert_eq!(f[0], 2.0); // vid unique: {100, 200}
        assert_eq!(f[1], 2.0); // rtx unique: {100, 300}
        assert_eq!(f[2], 1.0); // intersect {100}
        assert_eq!(f[3], 3.0); // union {100,200,300}
    }

    #[test]
    fn marker_sums_per_stream() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(0, 1, true)),
                (at(1), hdr(1, 2, true)),
                (at(2), hdr(2, 3, false)),
            ],
            rtx: vec![(at(3), hdr(0, 1, true))],
        };
        let f = w.features(None);
        assert_eq!(f[4], 2.0);
        assert_eq!(f[5], 1.0);
    }

    #[test]
    fn out_of_order_counts_discontinuities() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(10, 1, false)),
                (at(1), hdr(11, 1, false)), // in order
                (at(2), hdr(13, 2, false)), // gap
                (at(3), hdr(12, 2, false)), // backwards
                (at(4), hdr(15, 2, false)), // gap again
            ],
            rtx: vec![],
        };
        let f = w.features(None);
        assert_eq!(f[6], 3.0);
    }

    #[test]
    fn lag_zero_for_perfectly_paced_stream() {
        // Frames every 33.333 ms with 3000-tick increments (90 kHz).
        let w = RtpWindow {
            video: (0..10)
                .map(|i| {
                    (
                        Timestamp::from_micros(i * 33_333),
                        hdr(i as u16, (i * 3000) as u32, true),
                    )
                })
                .collect(),
            rtx: vec![],
        };
        let f = w.features(None);
        // lag mean ≈ 0, lag max small.
        assert!(f[7].abs() < 1.0, "lag mean {}", f[7]);
        assert!(f[11].abs() < 1.0, "lag max {}", f[11]);
    }

    #[test]
    fn delayed_frame_shows_positive_lag() {
        let mut video: Vec<(Timestamp, RtpHeader)> = (0..5)
            .map(|i| {
                (
                    Timestamp::from_micros(i * 33_333),
                    hdr(i as u16, (i * 3000) as u32, true),
                )
            })
            .collect();
        // Frame 5 arrives 100 ms late.
        video.push((
            Timestamp::from_micros(5 * 33_333 + 100_000),
            hdr(5, 15_000, true),
        ));
        let w = RtpWindow { video, rtx: vec![] };
        let f = w.features(None);
        assert!((f[11] - 100.0).abs() < 2.0, "lag max {}", f[11]);
    }

    #[test]
    fn session_lag_reference_applies() {
        let w = RtpWindow {
            video: vec![(at(1000), hdr(30, 90_000, true))],
            rtx: vec![],
        };
        // Anchor: frame 0 at t=0 with ts=0 → this frame is exactly on time.
        let f = w.features(Some(LagReference { t0: at(0), ts0: 0 }));
        assert!(f[7].abs() < 1e-6, "lag {}", f[7]);
        // Without an anchor the single frame defines zero lag trivially.
        let f2 = w.features(None);
        assert_eq!(f2[7], 0.0);
    }

    #[test]
    fn sketch_mode_is_bounded_and_close_to_exact() {
        // A long, reordered window: exact mode keeps one entry per frame;
        // sketch mode must stay within FRAME_RING + O(1) yet agree on
        // counts (linear-counting regime) and lag statistics.
        let mut exact = RtpWindowAcc::with_mode(StatsMode::Exact);
        let mut sketch = RtpWindowAcc::with_mode(StatsMode::Sketch);
        let anchor = LagReference { t0: at(0), ts0: 0 };
        sketch.set_lag_anchor(anchor);
        for i in 0..600u32 {
            let t = Timestamp::from_micros(i64::from(i) * 33_333 + i64::from(i % 5) * 700);
            let h = hdr(i as u16, i * 3000, i % 2 == 0);
            exact.push_video(t, &h);
            sketch.push_video(t, &h);
            if i % 7 == 0 {
                let hr = hdr(i as u16, i * 3000, false);
                exact.push_rtx(t, &hr);
                sketch.push_rtx(t, &hr);
            }
        }
        assert!(sketch.state_bytes() < exact.state_bytes());
        let fe = exact.features(Some(anchor));
        let fs = sketch.features(Some(anchor));
        for (i, (e, s)) in fe.iter().zip(&fs).enumerate() {
            let tol = match i {
                0 | 1 | 3 => 0.15 * e.abs().max(8.0), // HLL counts, ~3 sigma
                2 => 0.15 * fe[3].max(8.0),           // intersect: error scales with union
                9 => 0.15 * e.abs().max(1.0),         // P² median
                _ => 0.05 * e.abs().max(1e-6),
            };
            assert!((e - s).abs() <= tol, "feature {i}: exact {e} sketch {s}");
        }
        // Markers and out-of-order counts are exact in both modes.
        assert_eq!(fe[4], fs[4]);
        assert_eq!(fe[5], fs[5]);
        assert_eq!(fe[6], fs[6]);
    }

    #[test]
    fn reset_preserves_capacity_and_clears_state() {
        let mut acc = RtpWindowAcc::new();
        for i in 0..50u32 {
            acc.push_video(at(i64::from(i)), &hdr(i as u16, i * 10, false));
        }
        let warm = acc.state_bytes();
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.state_bytes(), warm, "reset must not release capacity");
        assert_eq!(acc.features(None), RtpWindowAcc::new().features(None));
    }

    #[test]
    fn frame_completion_uses_last_packet() {
        // One frame in two packets; the second arrives late.
        let w = RtpWindow {
            video: vec![(at(0), hdr(0, 0, false)), (at(40), hdr(1, 0, true))],
            rtx: vec![],
        };
        let f = w.features(Some(LagReference { t0: at(0), ts0: 0 }));
        assert!((f[11] - 40.0).abs() < 1e-6, "lag max {}", f[11]);
    }
}
