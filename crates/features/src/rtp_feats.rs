//! RTP-header features (Table 1, third row), used by the RTP ML baseline.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vcaml_netpkt::Timestamp;
use vcaml_rtp::{RtpClock, RtpHeader};

use crate::stats::{five_stats, STAT_SUFFIXES};

/// Names of the 12 RTP features, in vector order.
pub fn rtp_feature_names() -> Vec<String> {
    let mut names = vec![
        "# unique RTPvid TS".to_string(),
        "# unique RTPrtx TS".to_string(),
        "# RTP TS [intersect]".to_string(),
        "# RTP TS [union]".to_string(),
        "Markervid bit sum".to_string(),
        "Markerrtx bit sum".to_string(),
        "# out-of-order seq".to_string(),
    ];
    for s in STAT_SUFFIXES {
        names.push(format!("RTP lag [{s}]"));
    }
    names
}

/// Session-level reference for RTP-lag computation: the first video
/// frame's arrival time and RTP timestamp ("we assume that the first
/// frame had zero delay", §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LagReference {
    /// Arrival time of the first frame.
    pub t0: Timestamp,
    /// RTP timestamp of the first frame.
    pub ts0: u32,
}

/// The RTP packets of one prediction window, split by stream.
#[derive(Debug, Clone, Default)]
pub struct RtpWindow {
    /// Video-stream packets: (arrival, header).
    pub video: Vec<(Timestamp, RtpHeader)>,
    /// Retransmission-stream packets.
    pub rtx: Vec<(Timestamp, RtpHeader)>,
}

impl RtpWindow {
    /// Computes the 12 RTP features by replaying the window through the
    /// incremental [`RtpWindowAcc`] (the single implementation shared with
    /// the streaming engine). `lag_ref` anchors the RTP-lag clock; if
    /// `None`, the window's first video packet is used.
    pub fn features(&self, lag_ref: Option<LagReference>) -> Vec<f64> {
        let mut acc = RtpWindowAcc::new();
        for (t, h) in &self.video {
            acc.push_video(*t, h);
        }
        for (t, h) in &self.rtx {
            acc.push_rtx(*t, h);
        }
        acc.features(lag_ref)
    }
}

/// Incremental accumulator for the 12 RTP features of one window.
///
/// State is bounded by the window's content (unique timestamp sets and one
/// entry per frame observed in the window) and cleared by
/// [`RtpWindowAcc::reset`] at window boundaries.
#[derive(Debug, Clone, Default)]
pub struct RtpWindowAcc {
    vid_ts: HashSet<u32>,
    rtx_ts: HashSet<u32>,
    marker_vid: u64,
    marker_rtx: u64,
    last_vid_seq: Option<u16>,
    ooo: u64,
    /// Frames in first-arrival order: (RTP timestamp, completion time).
    frames: Vec<(u32, Timestamp)>,
}

impl RtpWindowAcc {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RtpWindowAcc::default()
    }

    /// Offers one video-stream packet (arrival order).
    pub fn push_video(&mut self, t: Timestamp, h: &RtpHeader) {
        self.vid_ts.insert(h.timestamp);
        if h.marker {
            self.marker_vid += 1;
        }
        // Out-of-order: discontinuities in the video sequence numbers in
        // arrival order ("total number of discontinuities in video packet
        // RTP sequence numbers", §3.3); pairs never span windows.
        if let Some(prev) = self.last_vid_seq {
            if h.sequence != prev.wrapping_add(1) {
                self.ooo += 1;
            }
        }
        self.last_vid_seq = Some(h.sequence);
        // Frame completion time = last arrival per unique RTP timestamp.
        match self.frames.iter_mut().find(|(ts, _)| *ts == h.timestamp) {
            Some((_, done)) => *done = (*done).max(t),
            None => self.frames.push((h.timestamp, t)),
        }
    }

    /// Offers one retransmission-stream packet (arrival order).
    pub fn push_rtx(&mut self, _t: Timestamp, h: &RtpHeader) {
        self.rtx_ts.insert(h.timestamp);
        if h.marker {
            self.marker_rtx += 1;
        }
    }

    /// True when no packet has been offered this window.
    pub fn is_empty(&self) -> bool {
        self.vid_ts.is_empty() && self.rtx_ts.is_empty()
    }

    /// Emits the 12 features for the current window.
    pub fn features(&self, lag_ref: Option<LagReference>) -> Vec<f64> {
        let intersect = self.vid_ts.intersection(&self.rtx_ts).count() as f64;
        let union = self.vid_ts.union(&self.rtx_ts).count() as f64;
        let lags = self.frame_lags(lag_ref);
        let mut v = Vec::with_capacity(12);
        v.push(self.vid_ts.len() as f64);
        v.push(self.rtx_ts.len() as f64);
        v.push(intersect);
        v.push(union);
        v.push(self.marker_vid as f64);
        v.push(self.marker_rtx as f64);
        v.push(self.ooo as f64);
        v.extend_from_slice(&five_stats(&lags));
        v
    }

    /// Clears per-window state.
    pub fn reset(&mut self) {
        *self = RtpWindowAcc::default();
    }

    /// Per-frame transmission lags in milliseconds, in first-arrival order.
    fn frame_lags(&self, lag_ref: Option<LagReference>) -> Vec<f64> {
        if self.frames.is_empty() {
            return Vec::new();
        }
        let anchor = lag_ref.unwrap_or(LagReference {
            t0: self.frames[0].1,
            ts0: self.frames[0].0,
        });
        let clock = RtpClock::video();
        self.frames
            .iter()
            .map(|(ts, t)| clock.lag_secs(anchor.t0, anchor.ts0, *t, *ts) * 1000.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(seq: u16, ts: u32, marker: bool) -> RtpHeader {
        RtpHeader::basic(102, seq, ts, 1, marker)
    }

    fn at(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn names_and_width_agree() {
        assert_eq!(rtp_feature_names().len(), 12);
        assert_eq!(RtpWindow::default().features(None).len(), 12);
    }

    #[test]
    fn unique_ts_counts() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(0, 100, false)),
                (at(1), hdr(1, 100, true)),
                (at(33), hdr(2, 200, true)),
            ],
            rtx: vec![(at(50), hdr(0, 100, false)), (at(51), hdr(1, 300, false))],
        };
        let f = w.features(None);
        assert_eq!(f[0], 2.0); // vid unique: {100, 200}
        assert_eq!(f[1], 2.0); // rtx unique: {100, 300}
        assert_eq!(f[2], 1.0); // intersect {100}
        assert_eq!(f[3], 3.0); // union {100,200,300}
    }

    #[test]
    fn marker_sums_per_stream() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(0, 1, true)),
                (at(1), hdr(1, 2, true)),
                (at(2), hdr(2, 3, false)),
            ],
            rtx: vec![(at(3), hdr(0, 1, true))],
        };
        let f = w.features(None);
        assert_eq!(f[4], 2.0);
        assert_eq!(f[5], 1.0);
    }

    #[test]
    fn out_of_order_counts_discontinuities() {
        let w = RtpWindow {
            video: vec![
                (at(0), hdr(10, 1, false)),
                (at(1), hdr(11, 1, false)), // in order
                (at(2), hdr(13, 2, false)), // gap
                (at(3), hdr(12, 2, false)), // backwards
                (at(4), hdr(15, 2, false)), // gap again
            ],
            rtx: vec![],
        };
        let f = w.features(None);
        assert_eq!(f[6], 3.0);
    }

    #[test]
    fn lag_zero_for_perfectly_paced_stream() {
        // Frames every 33.333 ms with 3000-tick increments (90 kHz).
        let w = RtpWindow {
            video: (0..10)
                .map(|i| {
                    (
                        Timestamp::from_micros(i * 33_333),
                        hdr(i as u16, (i * 3000) as u32, true),
                    )
                })
                .collect(),
            rtx: vec![],
        };
        let f = w.features(None);
        // lag mean ≈ 0, lag max small.
        assert!(f[7].abs() < 1.0, "lag mean {}", f[7]);
        assert!(f[11].abs() < 1.0, "lag max {}", f[11]);
    }

    #[test]
    fn delayed_frame_shows_positive_lag() {
        let mut video: Vec<(Timestamp, RtpHeader)> = (0..5)
            .map(|i| {
                (
                    Timestamp::from_micros(i * 33_333),
                    hdr(i as u16, (i * 3000) as u32, true),
                )
            })
            .collect();
        // Frame 5 arrives 100 ms late.
        video.push((
            Timestamp::from_micros(5 * 33_333 + 100_000),
            hdr(5, 15_000, true),
        ));
        let w = RtpWindow { video, rtx: vec![] };
        let f = w.features(None);
        assert!((f[11] - 100.0).abs() < 2.0, "lag max {}", f[11]);
    }

    #[test]
    fn session_lag_reference_applies() {
        let w = RtpWindow {
            video: vec![(at(1000), hdr(30, 90_000, true))],
            rtx: vec![],
        };
        // Anchor: frame 0 at t=0 with ts=0 → this frame is exactly on time.
        let f = w.features(Some(LagReference { t0: at(0), ts0: 0 }));
        assert!(f[7].abs() < 1e-6, "lag {}", f[7]);
        // Without an anchor the single frame defines zero lag trivially.
        let f2 = w.features(None);
        assert_eq!(f2[7], 0.0);
    }

    #[test]
    fn frame_completion_uses_last_packet() {
        // One frame in two packets; the second arrives late.
        let w = RtpWindow {
            video: vec![(at(0), hdr(0, 0, false)), (at(40), hdr(1, 0, true))],
            rtx: vec![],
        };
        let f = w.features(Some(LagReference { t0: at(0), ts0: 0 }));
        assert!((f[11] - 40.0).abs() < 1e-6, "lag max {}", f[11]);
    }
}
