//! RFC 3550 §5.1 fixed RTP header codec.

use serde::{Deserialize, Serialize};
use vcaml_netpkt::{Error, Result};

/// Fixed RTP header length (no CSRC, no extension) — the 12 bytes the
/// paper subtracts as per-packet RTP overhead in the heuristics.
pub const HEADER_LEN: usize = 12;

/// Decoded RTP fixed header.
///
/// CSRC entries and header extensions are length-validated and skipped; the
/// payload accessor accounts for them. Padding (P bit) is honoured when
/// delimiting the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpHeader {
    /// Marker bit — set on the last packet of a video frame, which is what
    /// the RTP Heuristic uses to detect frame ends.
    pub marker: bool,
    /// 7-bit payload type identifying the media format.
    pub payload_type: u8,
    /// 16-bit sequence number (increments by one per packet).
    pub sequence: u16,
    /// 32-bit media timestamp; all packets of one frame share it.
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
    /// Number of CSRC entries present (0–15).
    pub csrc_count: u8,
    /// Whether a header extension follows the fixed header.
    pub has_extension: bool,
    /// Whether the payload is padded.
    pub has_padding: bool,
}

impl RtpHeader {
    /// Parses the fixed header from the start of an RTP packet, validating
    /// the version and that CSRCs + extension fit in the buffer.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "rtp",
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        if buf[0] >> 6 != 2 {
            return Err(Error::Malformed {
                layer: "rtp",
                what: "version is not 2",
            });
        }
        let hdr = RtpHeader {
            has_padding: buf[0] & 0x20 != 0,
            has_extension: buf[0] & 0x10 != 0,
            csrc_count: buf[0] & 0x0f,
            marker: buf[1] & 0x80 != 0,
            payload_type: buf[1] & 0x7f,
            sequence: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        };
        // Validate that the declared CSRC list and extension header fit.
        let needed = hdr.payload_offset_unchecked(buf)?;
        if buf.len() < needed {
            return Err(Error::Truncated {
                layer: "rtp",
                needed,
                got: buf.len(),
            });
        }
        Ok(hdr)
    }

    fn payload_offset_unchecked(&self, buf: &[u8]) -> Result<usize> {
        let mut off = HEADER_LEN + usize::from(self.csrc_count) * 4;
        if self.has_extension {
            if buf.len() < off + 4 {
                return Err(Error::Truncated {
                    layer: "rtp",
                    needed: off + 4,
                    got: buf.len(),
                });
            }
            let ext_words = u16::from_be_bytes([buf[off + 2], buf[off + 3]]) as usize;
            off += 4 + ext_words * 4;
        }
        Ok(off)
    }

    /// Byte offset of the payload within the packet.
    pub fn payload_offset(&self, buf: &[u8]) -> Result<usize> {
        self.payload_offset_unchecked(buf)
    }

    /// Returns the media payload, skipping CSRCs/extension and trimming
    /// padding if the P bit is set.
    pub fn payload<'a>(&self, buf: &'a [u8]) -> Result<&'a [u8]> {
        let off = self.payload_offset(buf)?;
        let mut end = buf.len();
        if self.has_padding {
            if end <= off {
                return Err(Error::Malformed {
                    layer: "rtp",
                    what: "padding with empty payload",
                });
            }
            let pad = buf[end - 1] as usize;
            if pad == 0 || off + pad > end {
                return Err(Error::Malformed {
                    layer: "rtp",
                    what: "invalid padding length",
                });
            }
            end -= pad;
        }
        Ok(&buf[off..end])
    }

    /// Serialized length of this header (fixed part + CSRCs; extensions are
    /// never emitted by this library).
    pub fn header_len(&self) -> usize {
        HEADER_LEN + usize::from(self.csrc_count) * 4
    }

    /// Emits the fixed header (CSRC list bytes, if any, are zeroed).
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`RtpHeader::header_len`] or if
    /// `payload_type` exceeds 7 bits.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(self.payload_type <= 0x7f, "payload type exceeds 7 bits");
        assert!(self.csrc_count <= 15, "too many CSRCs");
        buf[0] = 0x80 | (u8::from(self.has_padding) << 5) | (self.csrc_count & 0x0f);
        buf[1] = (u8::from(self.marker) << 7) | self.payload_type;
        buf[2..4].copy_from_slice(&self.sequence.to_be_bytes());
        buf[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ssrc.to_be_bytes());
        for i in 0..usize::from(self.csrc_count) {
            buf[HEADER_LEN + i * 4..HEADER_LEN + (i + 1) * 4].fill(0);
        }
    }

    /// Convenience constructor for the common no-CSRC, no-extension case.
    pub fn basic(payload_type: u8, sequence: u16, timestamp: u32, ssrc: u32, marker: bool) -> Self {
        RtpHeader {
            marker,
            payload_type,
            sequence,
            timestamp,
            ssrc,
            csrc_count: 0,
            has_extension: false,
            has_padding: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let h = RtpHeader::basic(102, 0xbeef, 0xdead_beef, 0x1234_5678, true);
        let mut buf = vec![0u8; HEADER_LEN + 5];
        h.emit(&mut buf);
        buf[HEADER_LEN..].copy_from_slice(b"video");
        let parsed = RtpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.payload(&buf).unwrap(), b"video");
    }

    #[test]
    fn rejects_wrong_version() {
        let buf = [0x40u8; HEADER_LEN];
        assert!(matches!(
            RtpHeader::parse(&buf),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            RtpHeader::parse(&[0x80; 5]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn csrc_skipped() {
        let h = RtpHeader {
            csrc_count: 2,
            ..RtpHeader::basic(96, 1, 2, 3, false)
        };
        let mut buf = vec![0u8; HEADER_LEN + 8 + 3];
        h.emit(&mut buf);
        buf[HEADER_LEN + 8..].copy_from_slice(b"abc");
        let parsed = RtpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.csrc_count, 2);
        assert_eq!(parsed.payload(&buf).unwrap(), b"abc");
    }

    #[test]
    fn truncated_csrc_rejected() {
        let h = RtpHeader {
            csrc_count: 3,
            ..RtpHeader::basic(96, 1, 2, 3, false)
        };
        let mut buf = vec![0u8; HEADER_LEN + 12];
        h.emit(&mut buf);
        assert!(matches!(
            RtpHeader::parse(&buf[..HEADER_LEN + 4]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn extension_skipped() {
        let h = RtpHeader::basic(96, 1, 2, 3, false);
        let mut buf = vec![0u8; HEADER_LEN + 4 + 8 + 2];
        h.emit(&mut buf);
        buf[0] |= 0x10; // X bit
                        // Extension header: profile 0xbede, length = 2 words.
        buf[HEADER_LEN..HEADER_LEN + 2].copy_from_slice(&0xbedeu16.to_be_bytes());
        buf[HEADER_LEN + 2..HEADER_LEN + 4].copy_from_slice(&2u16.to_be_bytes());
        buf[HEADER_LEN + 12..].copy_from_slice(b"ok");
        let parsed = RtpHeader::parse(&buf).unwrap();
        assert!(parsed.has_extension);
        assert_eq!(parsed.payload(&buf).unwrap(), b"ok");
    }

    #[test]
    fn truncated_extension_rejected() {
        let h = RtpHeader::basic(96, 1, 2, 3, false);
        let mut buf = vec![0u8; HEADER_LEN + 4];
        h.emit(&mut buf);
        buf[0] |= 0x10;
        buf[HEADER_LEN + 2..HEADER_LEN + 4].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(
            RtpHeader::parse(&buf),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn padding_trimmed() {
        let h = RtpHeader {
            has_padding: true,
            ..RtpHeader::basic(96, 1, 2, 3, false)
        };
        let mut buf = vec![0u8; HEADER_LEN + 6];
        h.emit(&mut buf);
        buf[HEADER_LEN..HEADER_LEN + 3].copy_from_slice(b"xyz");
        buf[HEADER_LEN + 5] = 3; // 3 bytes of padding
        let parsed = RtpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.payload(&buf).unwrap(), b"xyz");
    }

    #[test]
    fn invalid_padding_rejected() {
        let h = RtpHeader {
            has_padding: true,
            ..RtpHeader::basic(96, 1, 2, 3, false)
        };
        let mut buf = vec![0u8; HEADER_LEN + 2];
        h.emit(&mut buf);
        buf[HEADER_LEN + 1] = 9; // pad length beyond payload
        let parsed = RtpHeader::parse(&buf).unwrap();
        assert!(parsed.payload(&buf).is_err());
    }

    #[test]
    fn marker_bit_positions() {
        let mut h = RtpHeader::basic(127, 0, 0, 0, false);
        let mut buf = vec![0u8; HEADER_LEN];
        h.emit(&mut buf);
        assert_eq!(buf[1], 127);
        h.marker = true;
        h.emit(&mut buf);
        assert_eq!(buf[1], 0x80 | 127);
    }
}
