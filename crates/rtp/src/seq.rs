//! RTP sequence-number arithmetic (RFC 3550 §A.1-style) and an extended
//! sequence tracker used both by the simulator's receiver and by the RTP-ML
//! "out-of-order sequence numbers" feature.

use serde::{Deserialize, Serialize};

/// Returns true if `a` is strictly newer than `b` in 16-bit serial
/// arithmetic (RFC 1982 semantics with window 2^15).
pub fn seq_greater(a: u16, b: u16) -> bool {
    a != b && a.wrapping_sub(b) < 0x8000
}

/// Signed distance `a - b` interpreted in serial arithmetic; positive when
/// `a` is newer.
pub fn seq_distance(a: u16, b: u16) -> i32 {
    let d = a.wrapping_sub(b);
    if d < 0x8000 {
        i32::from(d)
    } else {
        i32::from(d) - 0x1_0000
    }
}

/// Tracks a stream's sequence numbers, extending them to 64 bits across
/// wrap-arounds and counting reordering/gap events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequenceTracker {
    highest_ext: Option<u64>,
    /// Packets that arrived with a sequence number older than the highest
    /// seen so far (late / reordered arrivals).
    pub reordered: u64,
    /// Sum of gap sizes skipped when the highest sequence jumped by more
    /// than one (an upper bound on losses before any retransmission).
    pub gap_packets: u64,
    /// Total packets observed.
    pub received: u64,
}

impl SequenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one arrived sequence number; returns its 64-bit extension.
    pub fn observe(&mut self, seq: u16) -> u64 {
        self.received += 1;
        let ext = match self.highest_ext {
            None => u64::from(seq),
            Some(high) => {
                let high_lo = (high & 0xffff) as u16;
                let cycles = high >> 16;
                let d = seq_distance(seq, high_lo);
                if d == 0 {
                    // Duplicate of the current highest: count as a
                    // reordering event, keep the same extension.
                    self.reordered += 1;
                    high
                } else if d > 0 {
                    let candidate = (cycles << 16) + u64::from(high_lo) + d as u64;
                    if d > 1 {
                        self.gap_packets += (d - 1) as u64;
                    }
                    candidate
                } else {
                    self.reordered += 1;
                    // Late packet: extend relative to the current cycle,
                    // borrowing one cycle if it wrapped backwards.
                    let ext = (cycles << 16) | u64::from(seq);
                    if seq > high_lo && cycles > 0 {
                        ext - 0x1_0000
                    } else {
                        ext
                    }
                }
            }
        };
        if self.highest_ext.is_none_or(|h| ext > h) {
            self.highest_ext = Some(ext);
        }
        ext
    }

    /// Highest extended sequence number observed, if any packet arrived.
    pub fn highest(&self) -> Option<u64> {
        self.highest_ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greater_basic() {
        assert!(seq_greater(2, 1));
        assert!(!seq_greater(1, 2));
        assert!(!seq_greater(5, 5));
    }

    #[test]
    fn greater_across_wrap() {
        assert!(seq_greater(0, 0xffff));
        assert!(seq_greater(10, 0xfff0));
        assert!(!seq_greater(0xffff, 0));
    }

    #[test]
    fn distance_signs() {
        assert_eq!(seq_distance(5, 3), 2);
        assert_eq!(seq_distance(3, 5), -2);
        assert_eq!(seq_distance(0, 0xffff), 1);
        assert_eq!(seq_distance(0xffff, 0), -1);
        assert_eq!(seq_distance(7, 7), 0);
    }

    #[test]
    fn tracker_in_order() {
        let mut t = SequenceTracker::new();
        for s in 0..100u16 {
            assert_eq!(t.observe(s), u64::from(s));
        }
        assert_eq!(t.reordered, 0);
        assert_eq!(t.gap_packets, 0);
        assert_eq!(t.received, 100);
        assert_eq!(t.highest(), Some(99));
    }

    #[test]
    fn tracker_counts_gaps() {
        let mut t = SequenceTracker::new();
        t.observe(0);
        t.observe(5); // skipped 1..4
        assert_eq!(t.gap_packets, 4);
        assert_eq!(t.highest(), Some(5));
    }

    #[test]
    fn tracker_counts_reordering() {
        let mut t = SequenceTracker::new();
        t.observe(10);
        t.observe(12);
        let ext = t.observe(11); // late arrival
        assert_eq!(ext, 11);
        assert_eq!(t.reordered, 1);
        assert_eq!(t.highest(), Some(12));
    }

    #[test]
    fn tracker_extends_across_wrap() {
        let mut t = SequenceTracker::new();
        t.observe(0xfffe);
        t.observe(0xffff);
        assert_eq!(t.observe(0), 0x1_0000);
        assert_eq!(t.observe(1), 0x1_0001);
        assert_eq!(t.reordered, 0);
    }

    #[test]
    fn tracker_late_across_wrap() {
        let mut t = SequenceTracker::new();
        t.observe(0xffff);
        t.observe(0); // wraps, cycle 1
        let ext = t.observe(0xfffe); // very late, still cycle 0
        assert_eq!(ext, 0xfffe);
        assert_eq!(t.reordered, 1);
    }

    #[test]
    fn tracker_duplicate_is_reordered_not_gap() {
        let mut t = SequenceTracker::new();
        t.observe(4);
        t.observe(4);
        assert_eq!(t.reordered, 1);
        assert_eq!(t.gap_packets, 0);
    }
}
