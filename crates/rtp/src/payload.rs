//! Payload-type registries for the three studied VCAs.
//!
//! The paper observes (§3.1, §5.2): Teams in-lab uses PT 111 (Opus audio),
//! 102 (H.264 video), 103 (video retransmission); in the real-world dataset
//! Teams moved to video 100 / rtx 101, and Webex uses video 100 with no rtx
//! stream. Meet's PTs are not enumerated in the paper, so we use the stock
//! Chrome WebRTC defaults (111 Opus, 96 VP8/VP9, 97 rtx).

use serde::{Deserialize, Serialize};

/// Which VCA a session belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcaKind {
    /// Google Meet (VP8/VP9 over WebRTC).
    Meet,
    /// Microsoft Teams (H.264 over WebRTC).
    Teams,
    /// Cisco Webex (H.264 over WebRTC).
    Webex,
}

impl VcaKind {
    /// All three VCAs, in the order the paper's tables list them.
    pub const ALL: [VcaKind; 3] = [VcaKind::Meet, VcaKind::Teams, VcaKind::Webex];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            VcaKind::Meet => "Meet",
            VcaKind::Teams => "Teams",
            VcaKind::Webex => "Webex",
        }
    }
}

impl std::fmt::Display for VcaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Media class of an RTP packet, as ground truth derived from the payload
/// type header (the paper's Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// Opus audio.
    Audio,
    /// Primary video stream.
    Video,
    /// Video retransmission stream (RFC 4588-style).
    VideoRtx,
    /// Non-RTP session traffic (DTLS handshake, STUN, ...).
    Control,
}

/// Payload-type mapping for one VCA in one deployment environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PayloadMap {
    /// PT carrying Opus audio.
    pub audio: u8,
    /// PT carrying primary video.
    pub video: u8,
    /// PT carrying video retransmissions (`None` when the VCA sends none).
    pub video_rtx: Option<u8>,
}

impl PayloadMap {
    /// The in-lab mapping for a VCA (paper §3.1).
    pub fn lab(vca: VcaKind) -> Self {
        match vca {
            VcaKind::Meet => PayloadMap {
                audio: 111,
                video: 96,
                video_rtx: Some(97),
            },
            VcaKind::Teams => PayloadMap {
                audio: 111,
                video: 102,
                video_rtx: Some(103),
            },
            VcaKind::Webex => PayloadMap {
                audio: 111,
                video: 102,
                video_rtx: Some(103),
            },
        }
    }

    /// The real-world mapping (paper §5.2: Teams video 100 / rtx 101;
    /// Webex video 100, no rtx).
    pub fn real_world(vca: VcaKind) -> Self {
        match vca {
            VcaKind::Meet => PayloadMap {
                audio: 111,
                video: 96,
                video_rtx: Some(97),
            },
            VcaKind::Teams => PayloadMap {
                audio: 111,
                video: 100,
                video_rtx: Some(101),
            },
            VcaKind::Webex => PayloadMap {
                audio: 111,
                video: 100,
                video_rtx: None,
            },
        }
    }

    /// Classifies a payload type under this mapping.
    pub fn classify(&self, pt: u8) -> Option<MediaKind> {
        if pt == self.audio {
            Some(MediaKind::Audio)
        } else if pt == self.video {
            Some(MediaKind::Video)
        } else if self.video_rtx == Some(pt) {
            Some(MediaKind::VideoRtx)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_teams_matches_paper() {
        let m = PayloadMap::lab(VcaKind::Teams);
        assert_eq!(m.classify(111), Some(MediaKind::Audio));
        assert_eq!(m.classify(102), Some(MediaKind::Video));
        assert_eq!(m.classify(103), Some(MediaKind::VideoRtx));
        assert_eq!(m.classify(50), None);
    }

    #[test]
    fn real_world_teams_shifted() {
        let m = PayloadMap::real_world(VcaKind::Teams);
        assert_eq!(m.classify(100), Some(MediaKind::Video));
        assert_eq!(m.classify(101), Some(MediaKind::VideoRtx));
        assert_eq!(m.classify(102), None);
    }

    #[test]
    fn real_world_webex_has_no_rtx() {
        let m = PayloadMap::real_world(VcaKind::Webex);
        assert_eq!(m.classify(100), Some(MediaKind::Video));
        assert_eq!(m.video_rtx, None);
        assert_eq!(m.classify(101), None);
    }

    #[test]
    fn vca_names() {
        assert_eq!(VcaKind::Meet.to_string(), "Meet");
        assert_eq!(VcaKind::ALL.len(), 3);
    }
}
