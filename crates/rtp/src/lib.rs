//! # vcaml-rtp — RTP/RTCP substrate
//!
//! RFC 3550 RTP header codec, payload-type registries for the three VCAs
//! the paper studies (Google Meet, Microsoft Teams, Cisco Webex), sequence
//! number arithmetic with wrap-around handling, media clocks, and a minimal
//! RTCP subset (SR/RR + generic NACK) used by the simulator's
//! retransmission path.
//!
//! The *RTP baselines* of the paper (RTP Heuristic / RTP ML) parse exactly
//! the fields exposed here: payload type, marker bit, sequence number, and
//! timestamp.

pub mod clock;
pub mod header;
pub mod payload;
pub mod rtcp;
pub mod seq;

pub use clock::RtpClock;
pub use header::{RtpHeader, HEADER_LEN};
pub use payload::{MediaKind, PayloadMap, VcaKind};
pub use rtcp::{RtcpPacket, NACK_FMT};
pub use seq::{seq_distance, seq_greater, SequenceTracker};

/// The RTP video sampling frequency the paper assumes (RFC 6184: 90 kHz).
pub const VIDEO_CLOCK_HZ: u32 = 90_000;

/// Opus audio RTP clock (RFC 7587: always 48 kHz).
pub const AUDIO_CLOCK_HZ: u32 = 48_000;
