//! Minimal RTCP subset: sender reports, receiver reports, and the generic
//! NACK feedback message (RFC 4585 §6.2.1) that drives the simulator's
//! retransmission stream.

use serde::{Deserialize, Serialize};
use vcaml_netpkt::{Error, Result};

/// RTCP packet type for sender reports.
pub const PT_SR: u8 = 200;
/// RTCP packet type for receiver reports.
pub const PT_RR: u8 = 201;
/// RTCP packet type for transport-layer feedback.
pub const PT_RTPFB: u8 = 205;
/// FMT value selecting the generic NACK within RTPFB.
pub const NACK_FMT: u8 = 1;

/// Decoded RTCP packet (only the kinds the simulator exchanges).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RtcpPacket {
    /// Sender report: who sent, their NTP-less timestamp pair, and counts.
    SenderReport {
        /// Sender SSRC.
        ssrc: u32,
        /// RTP timestamp corresponding to this report.
        rtp_ts: u32,
        /// Cumulative packets sent.
        packet_count: u32,
        /// Cumulative payload bytes sent.
        octet_count: u32,
    },
    /// Receiver report with a single report block.
    ReceiverReport {
        /// Reporter SSRC.
        ssrc: u32,
        /// Reported-on SSRC.
        source_ssrc: u32,
        /// Loss fraction since last report (fixed point /256).
        fraction_lost: u8,
        /// Cumulative packets lost (24-bit).
        cumulative_lost: u32,
        /// Extended highest sequence number received.
        highest_seq: u32,
        /// Interarrival jitter in RTP clock units.
        jitter: u32,
    },
    /// Generic NACK listing lost sequence numbers.
    Nack {
        /// Sender of the feedback.
        sender_ssrc: u32,
        /// Media source being NACKed.
        media_ssrc: u32,
        /// Lost packet IDs (decoded from PID+BLP pairs).
        lost_seqs: Vec<u16>,
    },
}

impl RtcpPacket {
    /// Serializes the packet, returning the wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        match self {
            RtcpPacket::SenderReport {
                ssrc,
                rtp_ts,
                packet_count,
                octet_count,
            } => {
                let mut b = vec![0u8; 28];
                b[0] = 0x80; // V=2, no report blocks
                b[1] = PT_SR;
                let words = (b.len() / 4 - 1) as u16;
                b[2..4].copy_from_slice(&words.to_be_bytes());
                b[4..8].copy_from_slice(&ssrc.to_be_bytes());
                // NTP timestamp bytes 8..16 left zero: the simulator does
                // not model NTP sync.
                b[16..20].copy_from_slice(&rtp_ts.to_be_bytes());
                b[20..24].copy_from_slice(&packet_count.to_be_bytes());
                b[24..28].copy_from_slice(&octet_count.to_be_bytes());
                b
            }
            RtcpPacket::ReceiverReport {
                ssrc,
                source_ssrc,
                fraction_lost,
                cumulative_lost,
                highest_seq,
                jitter,
            } => {
                let mut b = vec![0u8; 32];
                b[0] = 0x81; // V=2, one report block
                b[1] = PT_RR;
                let words = (b.len() / 4 - 1) as u16;
                b[2..4].copy_from_slice(&words.to_be_bytes());
                b[4..8].copy_from_slice(&ssrc.to_be_bytes());
                b[8..12].copy_from_slice(&source_ssrc.to_be_bytes());
                b[12] = *fraction_lost;
                b[13..16].copy_from_slice(&cumulative_lost.to_be_bytes()[1..4]);
                b[16..20].copy_from_slice(&highest_seq.to_be_bytes());
                b[20..24].copy_from_slice(&jitter.to_be_bytes());
                // LSR/DLSR left zero.
                b
            }
            RtcpPacket::Nack {
                sender_ssrc,
                media_ssrc,
                lost_seqs,
            } => {
                let fci = encode_nack_fci(lost_seqs);
                let mut b = vec![0u8; 12 + fci.len() * 4];
                b[0] = 0x80 | NACK_FMT;
                b[1] = PT_RTPFB;
                let words = (b.len() / 4 - 1) as u16;
                b[2..4].copy_from_slice(&words.to_be_bytes());
                b[4..8].copy_from_slice(&sender_ssrc.to_be_bytes());
                b[8..12].copy_from_slice(&media_ssrc.to_be_bytes());
                for (i, (pid, blp)) in fci.iter().enumerate() {
                    b[12 + i * 4..14 + i * 4].copy_from_slice(&pid.to_be_bytes());
                    b[14 + i * 4..16 + i * 4].copy_from_slice(&blp.to_be_bytes());
                }
                b
            }
        }
    }

    /// Parses one RTCP packet from `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < 8 {
            return Err(Error::Truncated {
                layer: "rtcp",
                needed: 8,
                got: buf.len(),
            });
        }
        if buf[0] >> 6 != 2 {
            return Err(Error::Malformed {
                layer: "rtcp",
                what: "version is not 2",
            });
        }
        let len_words = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        let total = (len_words + 1) * 4;
        if buf.len() < total {
            return Err(Error::Truncated {
                layer: "rtcp",
                needed: total,
                got: buf.len(),
            });
        }
        match buf[1] {
            PT_SR => {
                if total < 28 {
                    return Err(Error::Malformed {
                        layer: "rtcp",
                        what: "SR too short",
                    });
                }
                Ok(RtcpPacket::SenderReport {
                    ssrc: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                    rtp_ts: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
                    packet_count: u32::from_be_bytes([buf[20], buf[21], buf[22], buf[23]]),
                    octet_count: u32::from_be_bytes([buf[24], buf[25], buf[26], buf[27]]),
                })
            }
            PT_RR => {
                if total < 32 {
                    return Err(Error::Malformed {
                        layer: "rtcp",
                        what: "RR too short",
                    });
                }
                Ok(RtcpPacket::ReceiverReport {
                    ssrc: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                    source_ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                    fraction_lost: buf[12],
                    cumulative_lost: u32::from_be_bytes([0, buf[13], buf[14], buf[15]]),
                    highest_seq: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
                    jitter: u32::from_be_bytes([buf[20], buf[21], buf[22], buf[23]]),
                })
            }
            PT_RTPFB if buf[0] & 0x1f == NACK_FMT => {
                let mut lost = Vec::new();
                let mut off = 12;
                while off + 4 <= total {
                    let pid = u16::from_be_bytes([buf[off], buf[off + 1]]);
                    let blp = u16::from_be_bytes([buf[off + 2], buf[off + 3]]);
                    lost.push(pid);
                    for bit in 0..16 {
                        if blp & (1 << bit) != 0 {
                            lost.push(pid.wrapping_add(bit + 1));
                        }
                    }
                    off += 4;
                }
                Ok(RtcpPacket::Nack {
                    sender_ssrc: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                    media_ssrc: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                    lost_seqs: lost,
                })
            }
            _ => Err(Error::Malformed {
                layer: "rtcp",
                what: "unsupported packet type",
            }),
        }
    }
}

/// Packs sorted-ish lost sequence numbers into (PID, BLP) pairs.
fn encode_nack_fci(lost: &[u16]) -> Vec<(u16, u16)> {
    let mut sorted: Vec<u16> = lost.to_vec();
    sorted.sort_by(|a, b| {
        if crate::seq::seq_greater(*b, *a) {
            std::cmp::Ordering::Less
        } else if a == b {
            std::cmp::Ordering::Equal
        } else {
            std::cmp::Ordering::Greater
        }
    });
    sorted.dedup();
    let mut out: Vec<(u16, u16)> = Vec::new();
    for s in sorted {
        match out.last_mut() {
            Some((pid, blp)) => {
                let d = s.wrapping_sub(*pid);
                if (1..=16).contains(&d) {
                    *blp |= 1 << (d - 1);
                } else {
                    out.push((s, 0));
                }
            }
            None => out.push((s, 0)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sr_roundtrip() {
        let sr = RtcpPacket::SenderReport {
            ssrc: 0xaabbccdd,
            rtp_ts: 90_000,
            packet_count: 1234,
            octet_count: 999_999,
        };
        assert_eq!(RtcpPacket::parse(&sr.emit()).unwrap(), sr);
    }

    #[test]
    fn rr_roundtrip() {
        let rr = RtcpPacket::ReceiverReport {
            ssrc: 1,
            source_ssrc: 2,
            fraction_lost: 25,
            cumulative_lost: 0x00ab_cdef,
            highest_seq: 0x0001_ffff,
            jitter: 300,
        };
        assert_eq!(RtcpPacket::parse(&rr.emit()).unwrap(), rr);
    }

    #[test]
    fn nack_roundtrip_contiguous() {
        let nack = RtcpPacket::Nack {
            sender_ssrc: 7,
            media_ssrc: 8,
            lost_seqs: vec![100, 101, 102, 105],
        };
        match RtcpPacket::parse(&nack.emit()).unwrap() {
            RtcpPacket::Nack { lost_seqs, .. } => {
                assert_eq!(lost_seqs, vec![100, 101, 102, 105]);
            }
            other => panic!("wrong packet: {other:?}"),
        }
    }

    #[test]
    fn nack_roundtrip_spread_over_multiple_fci() {
        let lost = vec![10u16, 50, 90];
        let nack = RtcpPacket::Nack {
            sender_ssrc: 1,
            media_ssrc: 2,
            lost_seqs: lost.clone(),
        };
        match RtcpPacket::parse(&nack.emit()).unwrap() {
            RtcpPacket::Nack { lost_seqs, .. } => assert_eq!(lost_seqs, lost),
            other => panic!("wrong packet: {other:?}"),
        }
    }

    #[test]
    fn nack_wraps_and_dedups() {
        let nack = RtcpPacket::Nack {
            sender_ssrc: 1,
            media_ssrc: 2,
            lost_seqs: vec![0xffff, 0, 0, 1],
        };
        match RtcpPacket::parse(&nack.emit()).unwrap() {
            RtcpPacket::Nack { lost_seqs, .. } => assert_eq!(lost_seqs, vec![0xffff, 0, 1]),
            other => panic!("wrong packet: {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_and_bad_version() {
        assert!(RtcpPacket::parse(&[0x80, 200]).is_err());
        let mut sr = RtcpPacket::SenderReport {
            ssrc: 0,
            rtp_ts: 0,
            packet_count: 0,
            octet_count: 0,
        }
        .emit();
        sr[0] = 0x40;
        assert!(RtcpPacket::parse(&sr).is_err());
    }

    #[test]
    fn rejects_unknown_type() {
        let mut b = vec![0x80u8, 210, 0, 1, 0, 0, 0, 0];
        b.extend_from_slice(&[0; 0]);
        assert!(RtcpPacket::parse(&b).is_err());
    }
}
