//! RTP media clocks: conversion between wall-clock time and RTP timestamp
//! units, plus the "RTP lag" computation used as an RTP-ML feature.

use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// A media sampling clock (90 kHz for video, 48 kHz for Opus audio).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpClock {
    hz: u32,
}

impl RtpClock {
    /// The 90 kHz video clock (RFC 6184).
    pub fn video() -> Self {
        RtpClock {
            hz: crate::VIDEO_CLOCK_HZ,
        }
    }

    /// The 48 kHz Opus clock (RFC 7587).
    pub fn audio() -> Self {
        RtpClock {
            hz: crate::AUDIO_CLOCK_HZ,
        }
    }

    /// A clock at an arbitrary frequency.
    pub fn new(hz: u32) -> Self {
        assert!(hz > 0, "clock frequency must be positive");
        RtpClock { hz }
    }

    /// Ticks per second.
    pub fn hz(&self) -> u32 {
        self.hz
    }

    /// Converts an elapsed duration to RTP ticks (rounded).
    pub fn ticks_for(&self, elapsed: Timestamp) -> u32 {
        ((elapsed.as_micros() as i128 * i128::from(self.hz) + 500_000) / 1_000_000) as u32
    }

    /// Converts a tick delta to seconds.
    pub fn secs_for_ticks(&self, ticks: u32) -> f64 {
        f64::from(ticks) / f64::from(self.hz)
    }

    /// The paper's *RTP lag*: for frame `i` received at `t_i` with RTP
    /// timestamp `ts_i`, the lag relative to frame 0 is
    /// `(t_i - t_0) - (ts_i - ts_0)/SF` — transmission delay under the
    /// assumption that frame 0 had zero delay. Returned in seconds.
    pub fn lag_secs(&self, t0: Timestamp, ts0: u32, ti: Timestamp, tsi: u32) -> f64 {
        let wall = (ti - t0).as_secs_f64();
        let media = f64::from(tsi.wrapping_sub(ts0)) / f64::from(self.hz);
        wall - media
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_clock_ticks() {
        let c = RtpClock::video();
        // One 30 fps frame interval = 3000 ticks.
        assert_eq!(c.ticks_for(Timestamp::from_micros(33_333)), 3000);
        assert_eq!(c.ticks_for(Timestamp::from_secs(1)), 90_000);
    }

    #[test]
    fn audio_clock_ticks() {
        let c = RtpClock::audio();
        // One 20 ms Opus frame = 960 ticks.
        assert_eq!(c.ticks_for(Timestamp::from_millis(20)), 960);
    }

    #[test]
    fn secs_roundtrip() {
        let c = RtpClock::video();
        let ticks = c.ticks_for(Timestamp::from_millis(100));
        assert!((c.secs_for_ticks(ticks) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn lag_zero_when_paced_by_clock() {
        let c = RtpClock::video();
        let t0 = Timestamp::from_secs(10);
        // Frame 30 ticks later in media time arrives exactly on schedule.
        let ti = t0 + Timestamp::from_micros(33_333);
        let lag = c.lag_secs(t0, 9000, ti, 9000 + 3000);
        assert!(lag.abs() < 1e-4, "lag = {lag}");
    }

    #[test]
    fn lag_positive_when_delayed() {
        let c = RtpClock::video();
        let t0 = Timestamp::ZERO;
        let ti = Timestamp::from_millis(133); // 100 ms late for a 33 ms frame
        let lag = c.lag_secs(t0, 0, ti, 3000);
        assert!((lag - 0.0997).abs() < 1e-3, "lag = {lag}");
    }

    #[test]
    fn lag_handles_timestamp_wrap() {
        let c = RtpClock::video();
        let t0 = Timestamp::ZERO;
        let ti = Timestamp::from_micros(33_333);
        // ts wraps around u32::MAX.
        let lag = c.lag_secs(t0, u32::MAX - 1000, ti, u32::MAX.wrapping_add(2000));
        assert!(lag.abs() < 1e-3, "lag = {lag}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_hz_rejected() {
        let _ = RtpClock::new(0);
    }
}
