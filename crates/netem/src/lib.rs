//! # vcaml-netem — network emulation substrate
//!
//! A discrete-event single-link emulator reproducing the conditions the
//! paper evaluates under:
//!
//! * **token-bucket rate limiting** with a drop-tail queue (bufferbloat up
//!   to a configurable queuing-delay cap),
//! * **propagation delay** with Gaussian **latency jitter** (which causes
//!   packet reordering, the paper's main heuristic-error driver),
//! * **Bernoulli packet loss** (paper §5.4 uses a Bernoulli loss model),
//! * **per-second condition schedules** — the paper emulates each NDT
//!   trace value for one second (§4.2),
//! * an **NDT-like trace generator** standing in for the M-Lab `tcp-info`
//!   dataset, and
//! * the **Table A.6 impairment profiles** used for the sensitivity study.

pub mod conditions;
pub mod impairment;
pub mod link;
pub mod perturb;
pub mod trace;

pub use conditions::{ConditionSchedule, SecondCondition};
pub use impairment::{ImpairmentDim, ImpairmentProfile};
pub use link::{DropReason, Link, LinkConfig, LinkVerdict};
pub use perturb::{Perturbation, Perturber};
pub use trace::{synth_ndt_schedule, NdtTest};
