//! Tap-side packet-sequence perturbations: loss, duplication,
//! reordering, and capped extra delay applied to an already-captured
//! packet sequence.
//!
//! [`Link`](crate::link::Link) models the bottleneck the *sender's*
//! traffic crosses; this module models what happens between the access
//! link and the monitor's tap — a span the receiver never sees, so
//! applying a [`Perturber`] to a capture changes what the estimators
//! observe without changing the ground truth. That is exactly the shape
//! the scenario harness needs for its duplication and reordering cells,
//! and the composition rules are simple enough to state as properties:
//!
//! * **loss never increases the packet count** (every survivor is an
//!   input packet);
//! * **duplication and reordering preserve the payload multiset modulo
//!   duplicates** (nothing is invented, nothing is lost);
//! * **delay is monotone and capped**: every packet's timestamp moves
//!   forward by at most the configured cap.
//!
//! The output is always re-sorted by timestamp (stable), matching the
//! arrival order a tap would record.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcaml_netpkt::Timestamp;

/// One composable impairment stage over a captured packet sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Drops each packet independently with probability `pct`/100.
    Loss {
        /// Drop probability, percent (0–100).
        pct: f64,
    },
    /// With probability `pct`/100, emits a copy of the packet
    /// `delay_ms` later (a duplicating middlebox or L2 retransmit).
    Duplicate {
        /// Duplication probability, percent (0–100).
        pct: f64,
        /// How much later the copy arrives, milliseconds (≥ 0).
        delay_ms: f64,
    },
    /// With probability `pct`/100, holds a packet back by `delay_ms`,
    /// letting later packets overtake it.
    Reorder {
        /// Hold-back probability, percent (0–100).
        pct: f64,
        /// Hold-back duration, milliseconds (≥ 0).
        delay_ms: f64,
    },
    /// Shifts every packet forward by `min(ms, cap_ms)` — a uniform
    /// extra path delay that can never exceed its cap and never moves a
    /// packet backward in time.
    Delay {
        /// Requested extra delay, milliseconds (≥ 0).
        ms: f64,
        /// Hard cap on the applied delay, milliseconds (≥ 0).
        cap_ms: f64,
    },
}

impl Perturbation {
    /// Validates the stage's parameters.
    fn validate(&self) {
        let prob_ok = |p: f64| (0.0..=100.0).contains(&p);
        let delay_ok = |d: f64| d.is_finite() && d >= 0.0;
        match *self {
            Perturbation::Loss { pct } => assert!(prob_ok(pct), "loss pct out of range"),
            Perturbation::Duplicate { pct, delay_ms } => {
                assert!(prob_ok(pct), "duplicate pct out of range");
                assert!(delay_ok(delay_ms), "duplicate delay invalid");
            }
            Perturbation::Reorder { pct, delay_ms } => {
                assert!(prob_ok(pct), "reorder pct out of range");
                assert!(delay_ok(delay_ms), "reorder delay invalid");
            }
            Perturbation::Delay { ms, cap_ms } => {
                assert!(delay_ok(ms), "delay invalid");
                assert!(delay_ok(cap_ms), "delay cap invalid");
            }
        }
    }
}

/// Applies a sequence of [`Perturbation`] stages to timestamped packets,
/// deterministically for a given seed.
///
/// The payload type is generic: the scenario harness runs captured wire
/// packets through it, the property tests run bare ids.
#[derive(Debug)]
pub struct Perturber {
    stages: Vec<Perturbation>,
    rng: StdRng,
}

impl Perturber {
    /// Builds a perturber over `stages`, applied in order.
    ///
    /// # Panics
    /// Panics if any stage has a probability outside 0–100 % or a
    /// negative/non-finite delay.
    pub fn new(stages: Vec<Perturbation>, seed: u64) -> Self {
        for stage in &stages {
            stage.validate();
        }
        Perturber {
            stages,
            rng: StdRng::seed_from_u64(seed ^ 0x7e57_ab1e),
        }
    }

    /// Runs `packets` through every stage and returns the surviving
    /// sequence sorted by (possibly shifted) timestamp. Sorting is
    /// stable, so packets with equal timestamps keep their relative
    /// order.
    pub fn apply<T: Clone>(&mut self, packets: Vec<(Timestamp, T)>) -> Vec<(Timestamp, T)> {
        let mut current = packets;
        for stage in self.stages.clone() {
            current = match stage {
                Perturbation::Loss { pct } => {
                    let p = pct / 100.0;
                    let mut out = Vec::with_capacity(current.len());
                    for item in current {
                        if self.rng.gen::<f64>() >= p {
                            out.push(item);
                        }
                    }
                    out
                }
                Perturbation::Duplicate { pct, delay_ms } => {
                    let p = pct / 100.0;
                    let shift = Timestamp::from_micros((delay_ms * 1000.0) as i64);
                    let mut out = Vec::with_capacity(current.len());
                    for (ts, payload) in current {
                        if self.rng.gen::<f64>() < p {
                            out.push((ts + shift, payload.clone()));
                        }
                        out.push((ts, payload));
                    }
                    out
                }
                Perturbation::Reorder { pct, delay_ms } => {
                    let p = pct / 100.0;
                    let shift = Timestamp::from_micros((delay_ms * 1000.0) as i64);
                    current
                        .into_iter()
                        .map(|(ts, payload)| {
                            if self.rng.gen::<f64>() < p {
                                (ts + shift, payload)
                            } else {
                                (ts, payload)
                            }
                        })
                        .collect()
                }
                Perturbation::Delay { ms, cap_ms } => {
                    let applied = ms.min(cap_ms);
                    let shift = Timestamp::from_micros((applied * 1000.0) as i64);
                    current
                        .into_iter()
                        .map(|(ts, payload)| (ts + shift, payload))
                        .collect()
                }
            };
        }
        current.sort_by_key(|&(ts, _)| ts);
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<(Timestamp, u32)> {
        (0..n)
            .map(|i| (Timestamp::from_millis(i as i64 * 10), i as u32))
            .collect()
    }

    #[test]
    fn zero_probability_stages_are_identity() {
        let mut p = Perturber::new(
            vec![
                Perturbation::Loss { pct: 0.0 },
                Perturbation::Duplicate {
                    pct: 0.0,
                    delay_ms: 5.0,
                },
                Perturbation::Reorder {
                    pct: 0.0,
                    delay_ms: 5.0,
                },
            ],
            1,
        );
        assert_eq!(p.apply(seq(50)), seq(50));
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut p = Perturber::new(vec![Perturbation::Loss { pct: 100.0 }], 2);
        assert!(p.apply(seq(40)).is_empty());
    }

    #[test]
    fn full_duplication_doubles() {
        let mut p = Perturber::new(
            vec![Perturbation::Duplicate {
                pct: 100.0,
                delay_ms: 1.0,
            }],
            3,
        );
        let out = p.apply(seq(20));
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn reorder_shuffles_payload_order_but_keeps_multiset() {
        let mut p = Perturber::new(
            vec![Perturbation::Reorder {
                pct: 30.0,
                delay_ms: 25.0,
            }],
            4,
        );
        let input = seq(200);
        let out = p.apply(input.clone());
        assert_eq!(out.len(), input.len());
        let mut ids: Vec<u32> = out.iter().map(|&(_, id)| id).collect();
        let inverted = ids.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inverted > 0, "30% hold-back produced no reordering");
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<u32>>());
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "output unsorted");
    }

    #[test]
    fn delay_is_capped() {
        let mut p = Perturber::new(
            vec![Perturbation::Delay {
                ms: 500.0,
                cap_ms: 40.0,
            }],
            5,
        );
        let out = p.apply(seq(10));
        for (i, &(ts, _)) in out.iter().enumerate() {
            let shift = ts - Timestamp::from_millis(i as i64 * 10);
            assert_eq!(shift.as_micros(), 40_000);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let stages = vec![
            Perturbation::Loss { pct: 10.0 },
            Perturbation::Duplicate {
                pct: 10.0,
                delay_ms: 2.0,
            },
            Perturbation::Reorder {
                pct: 10.0,
                delay_ms: 20.0,
            },
        ];
        let a = Perturber::new(stages.clone(), 7).apply(seq(300));
        let b = Perturber::new(stages.clone(), 7).apply(seq(300));
        assert_eq!(a, b);
        let c = Perturber::new(stages, 8).apply(seq(300));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "loss pct out of range")]
    fn invalid_probability_rejected() {
        let _ = Perturber::new(vec![Perturbation::Loss { pct: 120.0 }], 0);
    }
}
