//! The emulated bottleneck link.
//!
//! Packets are offered in non-decreasing send-time order; each is either
//! dropped (Bernoulli loss or queue overflow) or delivered at
//! `send_time + queueing + serialization + propagation + jitter`.
//! Gaussian jitter can reorder deliveries, exactly the effect the paper
//! identifies as the IP/UDP Heuristic's failure mode.

use crate::conditions::ConditionSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Bernoulli random loss.
    Random,
    /// Drop-tail queue overflow (sustained over-subscription).
    QueueOverflow,
}

/// Outcome of offering one packet to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// The packet arrives at the far end at this time.
    Delivered(Timestamp),
    /// The packet never arrives.
    Dropped(DropReason),
}

/// Static link parameters (dynamic conditions come from the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Maximum queuing delay before drop-tail, in milliseconds. Home
    /// routers commonly buffer 100–300 ms; the paper's tc-based emulation
    /// behaves similarly.
    pub max_queue_ms: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            max_queue_ms: 200.0,
        }
    }
}

/// A unidirectional emulated link.
#[derive(Debug)]
pub struct Link {
    schedule: ConditionSchedule,
    config: LinkConfig,
    rng: StdRng,
    /// Time at which the serializer becomes free.
    busy_until: Timestamp,
    delivered: u64,
    dropped_random: u64,
    dropped_queue: u64,
}

impl Link {
    /// Creates a link following `schedule`, with deterministic randomness
    /// derived from `seed`.
    pub fn new(schedule: ConditionSchedule, config: LinkConfig, seed: u64) -> Self {
        Link {
            schedule,
            config,
            rng: StdRng::seed_from_u64(seed),
            busy_until: Timestamp::ZERO,
            delivered: 0,
            dropped_random: 0,
            dropped_queue: 0,
        }
    }

    /// Offers a packet of `size_bytes` entering the link at `now`.
    ///
    /// Must be called with non-decreasing `now` values (send order); the
    /// *delivery* times it returns may be reordered by jitter.
    pub fn send(&mut self, now: Timestamp, size_bytes: usize) -> LinkVerdict {
        let cond = self.schedule.at(now);

        // Bernoulli loss applies regardless of congestion.
        if cond.loss_pct > 0.0 && self.rng.gen::<f64>() * 100.0 < cond.loss_pct {
            self.dropped_random += 1;
            return LinkVerdict::Dropped(DropReason::Random);
        }

        // Queueing: the serializer frees up at `busy_until`.
        let start = self.busy_until.max(now);
        let queue_wait_ms = (start - now).as_millis_f64();
        if queue_wait_ms > self.config.max_queue_ms {
            self.dropped_queue += 1;
            return LinkVerdict::Dropped(DropReason::QueueOverflow);
        }

        // Serialization at the bottleneck rate in force when transmission
        // starts.
        let rate_kbps = self.schedule.at(start).throughput_kbps;
        let tx_us = (size_bytes as f64 * 8.0) / rate_kbps * 1000.0;
        let tx_end = start + Timestamp::from_micros(tx_us.round() as i64);
        self.busy_until = tx_end;

        // Propagation + Gaussian jitter (truncated at zero so time never
        // runs backwards past the transmission end).
        let jitter_ms = if cond.jitter_ms > 0.0 {
            gaussian(&mut self.rng) * cond.jitter_ms
        } else {
            0.0
        };
        let owd_ms = (cond.delay_ms + jitter_ms).max(0.0);
        let arrival = tx_end + Timestamp::from_micros((owd_ms * 1000.0).round() as i64);
        self.delivered += 1;
        LinkVerdict::Delivered(arrival)
    }

    /// Packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped by random loss so far.
    pub fn dropped_random(&self) -> u64 {
        self.dropped_random
    }

    /// Packets dropped by queue overflow so far.
    pub fn dropped_queue(&self) -> u64 {
        self.dropped_queue
    }
}

/// Standard normal via Box–Muller (avoids pulling in rand_distr).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::SecondCondition;

    fn link_with(cond: SecondCondition, seed: u64) -> Link {
        Link::new(
            ConditionSchedule::constant(cond),
            LinkConfig::default(),
            seed,
        )
    }

    #[test]
    fn uncongested_delivery_is_delay_plus_serialization() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 8000.0,
                delay_ms: 10.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
            1,
        );
        // 1000 bytes at 8 Mbps = 1 ms serialization; +10 ms delay.
        match link.send(Timestamp::ZERO, 1000) {
            LinkVerdict::Delivered(t) => assert_eq!(t.as_micros(), 11_000),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn queueing_accumulates() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 800.0,
                delay_ms: 0.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
            1,
        );
        // Each 1000-byte packet takes 10 ms to serialize at 800 kbps.
        let t1 = match link.send(Timestamp::ZERO, 1000) {
            LinkVerdict::Delivered(t) => t,
            v => panic!("unexpected {v:?}"),
        };
        let t2 = match link.send(Timestamp::ZERO, 1000) {
            LinkVerdict::Delivered(t) => t,
            v => panic!("unexpected {v:?}"),
        };
        assert_eq!(t1.as_micros(), 10_000);
        assert_eq!(t2.as_micros(), 20_000);
    }

    #[test]
    fn sustained_overload_drops_tail() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 100.0,
                delay_ms: 0.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
            1,
        );
        // 100 kbps, 1250-byte packets = 100 ms each; queue cap 200 ms.
        let mut dropped = 0;
        for _ in 0..10 {
            if matches!(
                link.send(Timestamp::ZERO, 1250),
                LinkVerdict::Dropped(DropReason::QueueOverflow)
            ) {
                dropped += 1;
            }
        }
        assert!(dropped >= 6, "only {dropped} drops");
        assert_eq!(link.dropped_queue(), dropped);
    }

    #[test]
    fn bernoulli_loss_rate_close_to_nominal() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 1e9,
                delay_ms: 0.0,
                jitter_ms: 0.0,
                loss_pct: 10.0,
            },
            42,
        );
        let n = 20_000;
        let mut lost = 0;
        for i in 0..n {
            if matches!(
                link.send(Timestamp::from_micros(i), 100),
                LinkVerdict::Dropped(_)
            ) {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "observed loss {rate}");
    }

    #[test]
    fn jitter_reorders_packets() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 1e9,
                delay_ms: 50.0,
                jitter_ms: 30.0,
                loss_pct: 0.0,
            },
            7,
        );
        let mut arrivals = Vec::new();
        for i in 0..500 {
            if let LinkVerdict::Delivered(t) = link.send(Timestamp::from_millis(i * 2), 500) {
                arrivals.push(t);
            }
        }
        let reordered = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(reordered > 0, "expected jitter-induced reordering");
    }

    #[test]
    fn no_jitter_preserves_order() {
        let mut link = link_with(
            SecondCondition {
                throughput_kbps: 5000.0,
                delay_ms: 20.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
            7,
        );
        let mut arrivals = Vec::new();
        for i in 0..200 {
            if let LinkVerdict::Delivered(t) = link.send(Timestamp::from_millis(i), 700) {
                arrivals.push(t);
            }
        }
        assert!(arrivals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn rate_change_mid_schedule_affects_serialization() {
        let sched = ConditionSchedule::new(vec![
            SecondCondition {
                throughput_kbps: 8000.0,
                delay_ms: 0.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
            SecondCondition {
                throughput_kbps: 800.0,
                delay_ms: 0.0,
                jitter_ms: 0.0,
                loss_pct: 0.0,
            },
        ]);
        let mut link = Link::new(sched, LinkConfig::default(), 3);
        // In second 0: 1 ms; in second 1: 10 ms.
        match link.send(Timestamp::ZERO, 1000) {
            LinkVerdict::Delivered(t) => assert_eq!(t.as_micros(), 1_000),
            v => panic!("{v:?}"),
        }
        match link.send(Timestamp::from_secs(1), 1000) {
            LinkVerdict::Delivered(t) => assert_eq!(t.as_micros(), 1_010_000),
            v => panic!("{v:?}"),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cond = SecondCondition {
            throughput_kbps: 2000.0,
            delay_ms: 30.0,
            jitter_ms: 10.0,
            loss_pct: 5.0,
        };
        let run = |seed| {
            let mut link = link_with(cond, seed);
            (0..100)
                .map(|i| match link.send(Timestamp::from_millis(i * 3), 900) {
                    LinkVerdict::Delivered(t) => t.as_micros(),
                    LinkVerdict::Dropped(_) => -1,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
