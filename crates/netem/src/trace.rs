//! Synthetic NDT-like speed-test traces.
//!
//! The paper drives its lab emulation from M-Lab NDT `tcp-info` samples:
//! it replays each test's per-second RTT and loss series and samples
//! throughput from a Normal distribution fitted to the test (excluding
//! slow-start), keeping only tests with mean speed below 10 Mbps (§4.2).
//! That dataset is not available offline, so [`NdtTest::generate`]
//! synthesizes tests with the same structure: a mean speed drawn from a
//! log-uniform distribution capped at 10 Mbps, per-second Normal throughput
//! samples, an RTT random walk, and clustered loss episodes.

use crate::conditions::{ConditionSchedule, SecondCondition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Upper bound on mean test speed, per the paper ("We only use traces with
/// average speeds below 10 Mbps to create challenging network conditions").
pub const MAX_MEAN_KBPS: f64 = 10_000.0;

/// A synthetic speed test: summary statistics plus its per-second series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NdtTest {
    /// Mean throughput of the test in kbps.
    pub mean_kbps: f64,
    /// Standard deviation of per-second throughput in kbps.
    pub stdev_kbps: f64,
    /// Per-second RTT samples in milliseconds.
    pub rtt_ms: Vec<f64>,
    /// Per-second loss percentages.
    pub loss_pct: Vec<f64>,
}

impl NdtTest {
    /// Generates one synthetic test covering `secs` seconds.
    pub fn generate(seed: u64, secs: usize) -> Self {
        assert!(secs > 0, "test must cover at least one second");
        let mut rng = StdRng::seed_from_u64(seed);

        // Mean speed: log-uniform in [500 kbps, 10 Mbps]. Tests below
        // 10 Mbps still skew toward the top of that band in M-Lab data;
        // the VCAs' 1.5–4 Mbps ceilings keep mid-band tests challenging.
        let log_lo = 500.0f64.ln();
        let log_hi = MAX_MEAN_KBPS.ln();
        let mean_kbps = (log_lo + rng.gen::<f64>() * (log_hi - log_lo)).exp();
        // Dispersion: 8–25% of the mean.
        let stdev_kbps = mean_kbps * rng.gen_range(0.08..0.25);

        // RTT: base 10–120 ms with a bounded random walk (congestion
        // epochs raise it).
        let base_rtt: f64 = rng.gen_range(10.0..120.0);
        let mut rtt = base_rtt;
        let mut rtt_ms = Vec::with_capacity(secs);
        // Loss: mostly zero, with occasional bursty episodes.
        let mut loss_pct = Vec::with_capacity(secs);
        let mut episode_left = 0usize;
        let mut episode_pct = 0.0;
        for _ in 0..secs {
            rtt = (rtt + rng.gen_range(-8.0..8.0)).clamp(base_rtt * 0.8, base_rtt * 3.0);
            rtt_ms.push(rtt);
            if episode_left == 0 && rng.gen::<f64>() < 0.05 {
                episode_left = rng.gen_range(1..4);
                episode_pct = rng.gen_range(0.5..6.0);
            }
            if episode_left > 0 {
                episode_left -= 1;
                loss_pct.push(episode_pct);
            } else {
                loss_pct.push(0.0);
            }
        }
        NdtTest {
            mean_kbps,
            stdev_kbps,
            rtt_ms,
            loss_pct,
        }
    }

    /// Converts the test into a per-second [`ConditionSchedule`], sampling
    /// throughput from `Normal(mean, stdev)` exactly as the paper does
    /// ("throughput values are sampled from a normal distribution with the
    /// same mean and variance as the test throughput").
    pub fn to_schedule(&self, seed: u64) -> ConditionSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let seconds = self
            .rtt_ms
            .iter()
            .zip(&self.loss_pct)
            .map(|(&rtt, &loss)| {
                let tput = (self.mean_kbps + gaussian(&mut rng) * self.stdev_kbps).max(100.0);
                SecondCondition {
                    throughput_kbps: tput,
                    delay_ms: rtt / 2.0, // one-way
                    // The paper replays per-second RTT values with no
                    // per-packet jitter (§4.2); latency jitter is studied
                    // separately in the Table A.6 sweep.
                    jitter_ms: 0.0,
                    loss_pct: loss,
                }
            })
            .collect();
        ConditionSchedule::new(seconds)
    }
}

/// Convenience: generate a test and immediately convert it to a schedule.
pub fn synth_ndt_schedule(seed: u64, secs: usize) -> ConditionSchedule {
    NdtTest::generate(seed, secs).to_schedule(seed ^ 0x9e37_79b9_7f4a_7c15)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    #[test]
    fn mean_speed_below_cap() {
        for seed in 0..50 {
            let t = NdtTest::generate(seed, 30);
            assert!(t.mean_kbps < MAX_MEAN_KBPS, "seed {seed}: {}", t.mean_kbps);
            assert!(t.mean_kbps >= 500.0);
        }
    }

    #[test]
    fn series_lengths_match() {
        let t = NdtTest::generate(3, 25);
        assert_eq!(t.rtt_ms.len(), 25);
        assert_eq!(t.loss_pct.len(), 25);
    }

    #[test]
    fn schedule_covers_duration() {
        let sched = synth_ndt_schedule(11, 20);
        assert_eq!(sched.len_secs(), 20);
        let c = sched.at(Timestamp::from_secs(5));
        assert!(c.is_valid());
    }

    #[test]
    fn schedule_throughput_tracks_test_mean() {
        let t = NdtTest::generate(21, 200);
        let sched = t.to_schedule(99);
        let m = sched.mean_throughput_kbps();
        // Sample mean within 3 sigma/sqrt(n) of the test mean (floor at
        // 100 kbps biases upward slightly for slow tests, allow slack).
        assert!(
            (m - t.mean_kbps).abs() < t.stdev_kbps,
            "schedule mean {m} vs test mean {}",
            t.mean_kbps
        );
    }

    #[test]
    fn loss_comes_in_episodes() {
        // Across many seeds, at least one test has a loss episode of
        // length >= 2 seconds.
        let mut found = false;
        for seed in 0..30 {
            let t = NdtTest::generate(seed, 60);
            for w in t.loss_pct.windows(2) {
                if w[0] > 0.0 && w[1] > 0.0 {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn deterministic() {
        let a = NdtTest::generate(5, 30);
        let b = NdtTest::generate(5, 30);
        assert_eq!(a.rtt_ms, b.rtt_ms);
        assert_eq!(a.mean_kbps, b.mean_kbps);
    }

    #[test]
    fn rtt_stays_bounded() {
        let t = NdtTest::generate(9, 300);
        let base = t.rtt_ms[0];
        for &r in &t.rtt_ms {
            assert!(r > 0.0 && r < base * 4.0, "rtt {r} vs base {base}");
        }
    }
}
