//! The paper's Table A.6 impairment profiles: single-dimension sweeps used
//! for the §5.4 network-condition sensitivity study.
//!
//! Defaults when a dimension is not being varied: throughput 1500 kbps,
//! latency 50 ms, latency jitter 0 ms, throughput jitter 0, loss 0%.

use crate::conditions::{ConditionSchedule, SecondCondition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which single network parameter a profile varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImpairmentDim {
    /// Mean throughput sweep: {100, 200, 500, 1000, 2000, 4000} kbps.
    MeanThroughput,
    /// Throughput stdev sweep: {0, 100, 200, 500, 1000, 1500} kbps.
    ThroughputStdev,
    /// Mean latency sweep: {50, 100, 200, 300, 400, 500} ms.
    MeanLatency,
    /// Latency stdev sweep: {10, 20, ..., 100} ms.
    LatencyStdev,
    /// Packet-loss sweep: {1, 2, 5, 10, 15, 20} %.
    PacketLoss,
}

impl ImpairmentDim {
    /// All five dimensions, in Table A.6 row order.
    pub const ALL: [ImpairmentDim; 5] = [
        ImpairmentDim::MeanThroughput,
        ImpairmentDim::ThroughputStdev,
        ImpairmentDim::MeanLatency,
        ImpairmentDim::LatencyStdev,
        ImpairmentDim::PacketLoss,
    ];

    /// The sweep values for this dimension (Table A.6).
    pub fn values(&self) -> &'static [f64] {
        match self {
            ImpairmentDim::MeanThroughput => &[100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0],
            ImpairmentDim::ThroughputStdev => &[0.0, 100.0, 200.0, 500.0, 1000.0, 1500.0],
            ImpairmentDim::MeanLatency => &[50.0, 100.0, 200.0, 300.0, 400.0, 500.0],
            ImpairmentDim::LatencyStdev => {
                &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
            }
            ImpairmentDim::PacketLoss => &[1.0, 2.0, 5.0, 10.0, 15.0, 20.0],
        }
    }

    /// Row label as in Table A.6.
    pub fn label(&self) -> &'static str {
        match self {
            ImpairmentDim::MeanThroughput => "Mean Throughput",
            ImpairmentDim::ThroughputStdev => "Throughput stdev.",
            ImpairmentDim::MeanLatency => "Mean Latency",
            ImpairmentDim::LatencyStdev => "Latency stdev.",
            ImpairmentDim::PacketLoss => "Packet Loss %",
        }
    }
}

/// One cell of the Table A.6 grid: a dimension at a specific value, all
/// other parameters at their defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentProfile {
    /// The varied dimension.
    pub dim: ImpairmentDim,
    /// The value it is set to.
    pub value: f64,
}

/// Default mean throughput (kbps) when not varied.
pub const DEFAULT_TPUT_KBPS: f64 = 1500.0;
/// Default RTT-style latency (ms) when not varied; emulated as one-way
/// delay of half this value.
pub const DEFAULT_LATENCY_MS: f64 = 50.0;

impl ImpairmentProfile {
    /// Expands the profile into a per-second schedule of `secs` seconds.
    ///
    /// Throughput-stdev profiles resample throughput each second from
    /// `Normal(1500, value)`; all other profiles are constant over time.
    pub fn schedule(&self, secs: usize, seed: u64) -> ConditionSchedule {
        assert!(secs > 0);
        let base = SecondCondition {
            throughput_kbps: DEFAULT_TPUT_KBPS,
            delay_ms: DEFAULT_LATENCY_MS / 2.0,
            jitter_ms: 0.0,
            loss_pct: 0.0,
        };
        let seconds: Vec<SecondCondition> = match self.dim {
            ImpairmentDim::MeanThroughput => {
                vec![
                    SecondCondition {
                        throughput_kbps: self.value,
                        ..base
                    };
                    secs
                ]
            }
            ImpairmentDim::ThroughputStdev => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..secs)
                    .map(|_| {
                        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                        let u2: f64 = rng.gen::<f64>();
                        let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                        SecondCondition {
                            throughput_kbps: (DEFAULT_TPUT_KBPS + g * self.value).max(100.0),
                            ..base
                        }
                    })
                    .collect()
            }
            ImpairmentDim::MeanLatency => {
                vec![
                    SecondCondition {
                        delay_ms: self.value / 2.0,
                        ..base
                    };
                    secs
                ]
            }
            ImpairmentDim::LatencyStdev => {
                vec![
                    SecondCondition {
                        jitter_ms: self.value,
                        ..base
                    };
                    secs
                ]
            }
            ImpairmentDim::PacketLoss => {
                vec![
                    SecondCondition {
                        loss_pct: self.value,
                        ..base
                    };
                    secs
                ]
            }
        };
        ConditionSchedule::new(seconds)
    }

    /// The full Table A.6 grid.
    pub fn grid() -> Vec<ImpairmentProfile> {
        ImpairmentDim::ALL
            .iter()
            .flat_map(|d| {
                d.values()
                    .iter()
                    .map(|&v| ImpairmentProfile { dim: *d, value: v })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    #[test]
    fn grid_size_matches_table_a6() {
        // 6 + 6 + 6 + 10 + 6 = 34 cells.
        assert_eq!(ImpairmentProfile::grid().len(), 34);
    }

    #[test]
    fn loss_profile_sets_only_loss() {
        let p = ImpairmentProfile {
            dim: ImpairmentDim::PacketLoss,
            value: 10.0,
        };
        let s = p.schedule(5, 1);
        let c = s.at(Timestamp::from_secs(2));
        assert_eq!(c.loss_pct, 10.0);
        assert_eq!(c.throughput_kbps, DEFAULT_TPUT_KBPS);
        assert_eq!(c.delay_ms, DEFAULT_LATENCY_MS / 2.0);
        assert_eq!(c.jitter_ms, 0.0);
    }

    #[test]
    fn latency_profile_halves_to_one_way() {
        let p = ImpairmentProfile {
            dim: ImpairmentDim::MeanLatency,
            value: 400.0,
        };
        assert_eq!(p.schedule(3, 1).at(Timestamp::ZERO).delay_ms, 200.0);
    }

    #[test]
    fn tput_stdev_profile_varies_per_second() {
        let p = ImpairmentProfile {
            dim: ImpairmentDim::ThroughputStdev,
            value: 500.0,
        };
        let s = p.schedule(30, 7);
        let vals: Vec<f64> = s.iter().map(|c| c.throughput_kbps).collect();
        let distinct = vals.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > 20);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - DEFAULT_TPUT_KBPS).abs() < 500.0, "mean {mean}");
    }

    #[test]
    fn zero_stdev_is_constant() {
        let p = ImpairmentProfile {
            dim: ImpairmentDim::ThroughputStdev,
            value: 0.0,
        };
        let s = p.schedule(10, 7);
        assert!(s.iter().all(|c| c.throughput_kbps == DEFAULT_TPUT_KBPS));
    }

    #[test]
    fn jitter_profile_sets_jitter() {
        let p = ImpairmentProfile {
            dim: ImpairmentDim::LatencyStdev,
            value: 60.0,
        };
        assert_eq!(p.schedule(2, 0).at(Timestamp::ZERO).jitter_ms, 60.0);
    }

    #[test]
    fn labels_cover_all_dims() {
        for d in ImpairmentDim::ALL {
            assert!(!d.label().is_empty());
            assert!(!d.values().is_empty());
        }
    }
}
