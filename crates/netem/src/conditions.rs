//! Per-second network condition schedules (paper §4.2: "Each throughput,
//! delay, and loss value is emulated for a period of 1 second").

use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// Network conditions applied during one second of emulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecondCondition {
    /// Bottleneck throughput in kilobits per second.
    pub throughput_kbps: f64,
    /// One-way propagation delay in milliseconds (half the emulated RTT).
    pub delay_ms: f64,
    /// Standard deviation of Gaussian latency jitter in milliseconds.
    pub jitter_ms: f64,
    /// Bernoulli packet-loss probability in percent (0–100).
    pub loss_pct: f64,
}

impl SecondCondition {
    /// The paper's §5.4 default operating point: 1500 kbps, 50 ms latency,
    /// no jitter, no loss.
    pub fn paper_default() -> Self {
        SecondCondition {
            throughput_kbps: 1500.0,
            delay_ms: 25.0,
            jitter_ms: 0.0,
            loss_pct: 0.0,
        }
    }

    /// Validates the physical plausibility of the condition.
    pub fn is_valid(&self) -> bool {
        self.throughput_kbps > 0.0
            && self.delay_ms >= 0.0
            && self.jitter_ms >= 0.0
            && (0.0..=100.0).contains(&self.loss_pct)
    }
}

/// A sequence of per-second conditions; the last entry persists once the
/// schedule is exhausted (calls can outlast speed-test traces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionSchedule {
    seconds: Vec<SecondCondition>,
}

impl ConditionSchedule {
    /// Builds a schedule from explicit per-second entries.
    ///
    /// # Panics
    /// Panics if `seconds` is empty or any entry is invalid.
    pub fn new(seconds: Vec<SecondCondition>) -> Self {
        assert!(
            !seconds.is_empty(),
            "schedule must cover at least one second"
        );
        assert!(
            seconds.iter().all(SecondCondition::is_valid),
            "invalid condition in schedule"
        );
        ConditionSchedule { seconds }
    }

    /// A schedule holding one condition forever.
    pub fn constant(cond: SecondCondition) -> Self {
        Self::new(vec![cond])
    }

    /// The condition in force at time `t` (clamped to the final entry).
    pub fn at(&self, t: Timestamp) -> SecondCondition {
        let idx = t.second_index().max(0) as usize;
        self.seconds[idx.min(self.seconds.len() - 1)]
    }

    /// Number of scheduled seconds.
    pub fn len_secs(&self) -> usize {
        self.seconds.len()
    }

    /// Iterates over the per-second entries.
    pub fn iter(&self) -> impl Iterator<Item = &SecondCondition> {
        self.seconds.iter()
    }

    /// Mean throughput across the schedule, in kbps.
    pub fn mean_throughput_kbps(&self) -> f64 {
        self.seconds.iter().map(|s| s.throughput_kbps).sum::<f64>() / self.seconds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_clamps_to_ends() {
        let sched = ConditionSchedule::new(vec![
            SecondCondition {
                throughput_kbps: 1000.0,
                ..SecondCondition::paper_default()
            },
            SecondCondition {
                throughput_kbps: 2000.0,
                ..SecondCondition::paper_default()
            },
        ]);
        assert_eq!(
            sched.at(Timestamp::from_millis(500)).throughput_kbps,
            1000.0
        );
        assert_eq!(
            sched.at(Timestamp::from_millis(1500)).throughput_kbps,
            2000.0
        );
        // Beyond the end: last entry persists.
        assert_eq!(sched.at(Timestamp::from_secs(99)).throughput_kbps, 2000.0);
        // Negative time clamps to the first entry.
        assert_eq!(sched.at(Timestamp::from_micros(-5)).throughput_kbps, 1000.0);
    }

    #[test]
    fn constant_schedule() {
        let sched = ConditionSchedule::constant(SecondCondition::paper_default());
        assert_eq!(sched.len_secs(), 1);
        assert_eq!(sched.at(Timestamp::from_secs(42)).delay_ms, 25.0);
    }

    #[test]
    fn mean_throughput() {
        let sched = ConditionSchedule::new(vec![
            SecondCondition {
                throughput_kbps: 1000.0,
                ..SecondCondition::paper_default()
            },
            SecondCondition {
                throughput_kbps: 3000.0,
                ..SecondCondition::paper_default()
            },
        ]);
        assert_eq!(sched.mean_throughput_kbps(), 2000.0);
    }

    #[test]
    #[should_panic(expected = "at least one second")]
    fn empty_schedule_rejected() {
        let _ = ConditionSchedule::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid condition")]
    fn invalid_condition_rejected() {
        let _ = ConditionSchedule::new(vec![SecondCondition {
            throughput_kbps: -1.0,
            ..SecondCondition::paper_default()
        }]);
    }

    #[test]
    fn validity_bounds() {
        let mut c = SecondCondition::paper_default();
        assert!(c.is_valid());
        c.loss_pct = 100.0;
        assert!(c.is_valid());
        c.loss_pct = 100.1;
        assert!(!c.is_valid());
        c.loss_pct = 0.0;
        c.jitter_ms = -0.1;
        assert!(!c.is_valid());
    }
}
