//! Property tests for `vcaml_netem::perturb` — the composition
//! invariants the scenario harness relies on:
//!
//! * loss never increases the packet count, and every survivor is an
//!   input packet;
//! * reordering and duplication preserve the payload multiset modulo
//!   duplicates (nothing invented, nothing lost);
//! * delay is monotone and capped: every timestamp moves forward by at
//!   most the cap, never backward;
//! * arbitrary stage compositions stay within the input multiset modulo
//!   duplicates.

use proptest::prelude::*;
use vcaml_netem::{Perturbation, Perturber};
use vcaml_netpkt::Timestamp;

/// Tags each packet with a unique id so multiset comparisons are exact.
fn tagged(n: usize) -> Vec<(Timestamp, u32)> {
    (0..n)
        .map(|i| (Timestamp::from_micros(i as i64 * 1500), i as u32))
        .collect()
}

fn counts(out: &[(Timestamp, u32)]) -> Vec<usize> {
    let max = out
        .iter()
        .map(|&(_, id)| id)
        .max()
        .map_or(0, |m| m as usize + 1);
    let mut c = vec![0usize; max];
    for &(_, id) in out {
        c[id as usize] += 1;
    }
    c
}

proptest! {
    #[test]
    fn loss_never_increases_packet_count(n in 1usize..400, pct in 0.0f64..100.0, seed in any::<u64>()) {
        let input = tagged(n);
        let out = Perturber::new(vec![Perturbation::Loss { pct }], seed).apply(input.clone());
        prop_assert!(out.len() <= input.len());
        // Every survivor is an input packet, at most once.
        for (id, c) in counts(&out).into_iter().enumerate() {
            prop_assert!(c <= 1, "loss duplicated packet {}", id);
        }
        prop_assert!(out.iter().all(|&(_, id)| (id as usize) < n));
    }

    #[test]
    fn duplication_preserves_multiset_modulo_dups(n in 1usize..300, pct in 0.0f64..100.0,
                                                  delay_ms in 0.0f64..50.0, seed in any::<u64>()) {
        let input = tagged(n);
        let out = Perturber::new(
            vec![Perturbation::Duplicate { pct, delay_ms }], seed,
        ).apply(input.clone());
        prop_assert!(out.len() >= input.len());
        prop_assert!(out.len() <= 2 * input.len());
        // Every original survives exactly once or twice; no id invented.
        let c = counts(&out);
        prop_assert_eq!(c.len(), n);
        for (id, k) in c.into_iter().enumerate() {
            prop_assert!(k == 1 || k == 2, "packet {} appeared {} times", id, k);
        }
    }

    #[test]
    fn reorder_preserves_payload_multiset(n in 1usize..300, pct in 0.0f64..100.0,
                                          delay_ms in 0.0f64..100.0, seed in any::<u64>()) {
        let input = tagged(n);
        let out = Perturber::new(
            vec![Perturbation::Reorder { pct, delay_ms }], seed,
        ).apply(input.clone());
        prop_assert_eq!(out.len(), input.len());
        let mut ids: Vec<u32> = out.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u32).collect::<Vec<u32>>());
        // Output is sorted by timestamp (tap arrival order).
        prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn delay_is_monotone_and_capped(n in 1usize..300, ms in 0.0f64..500.0,
                                    cap_ms in 0.0f64..500.0, seed in any::<u64>()) {
        let input = tagged(n);
        let out = Perturber::new(
            vec![Perturbation::Delay { ms, cap_ms }], seed,
        ).apply(input.clone());
        prop_assert_eq!(out.len(), input.len());
        let cap_us = (ms.min(cap_ms) * 1000.0) as i64;
        // Uniform shift preserves order, so index pairing is valid.
        for (&(out_ts, out_id), &(in_ts, in_id)) in out.iter().zip(input.iter()) {
            prop_assert_eq!(out_id, in_id);
            let shift = (out_ts - in_ts).as_micros();
            prop_assert!(shift >= 0, "delay moved a packet backward");
            prop_assert!(shift <= cap_us, "shift {}us exceeds cap {}us", shift, cap_us);
        }
    }

    #[test]
    fn composition_stays_within_input_multiset(n in 1usize..200,
                                               loss_pct in 0.0f64..40.0,
                                               dup_pct in 0.0f64..40.0,
                                               seed in any::<u64>()) {
        let input = tagged(n);
        let out = Perturber::new(
            vec![
                Perturbation::Loss { pct: loss_pct },
                Perturbation::Duplicate { pct: dup_pct, delay_ms: 3.0 },
                Perturbation::Reorder { pct: 20.0, delay_ms: 15.0 },
                Perturbation::Delay { ms: 10.0, cap_ms: 8.0 },
            ],
            seed,
        ).apply(input.clone());
        // Modulo duplicates the output payloads are a subset of the input.
        for (id, k) in counts(&out).into_iter().enumerate() {
            prop_assert!(k <= 2, "packet {} appeared {} times", id, k);
            prop_assert!(id < n);
        }
        prop_assert!(out.len() <= 2 * input.len());
        prop_assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
