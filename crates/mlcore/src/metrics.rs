//! Evaluation metrics used throughout the paper: MAE (frame rate, frame
//! jitter), MRAE (bitrate), classification accuracy, normalized confusion
//! matrices (Tables 2/4/A.1–A.3), and percentiles for the box-plot
//! whiskers (10th/90th).

use serde::{Deserialize, Serialize};

/// Mean absolute error.
///
/// # Panics
/// Panics if inputs are empty or lengths differ.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty input");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean relative absolute error: mean of |pred - truth| / truth, skipping
/// samples whose ground truth is (near) zero — the paper reports bitrate
/// errors relative to ground-truth bitrate.
pub fn mrae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if t.abs() > 1e-9 {
            sum += (p - t).abs() / t.abs();
            n += 1;
        }
    }
    assert!(n > 0, "no nonzero ground-truth samples");
    sum / n as f64
}

/// Signed errors (pred − truth), for error-distribution box plots.
pub fn errors(pred: &[f64], truth: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    pred.iter().zip(truth).map(|(p, t)| p - t).collect()
}

/// Fraction of samples where predicted class equals the true class.
pub fn accuracy(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty input");
    let hits = pred
        .iter()
        .zip(truth)
        .filter(|(p, t)| (**p - **t).abs() < 0.5)
        .count();
    hits as f64 / pred.len() as f64
}

/// Linear-interpolated percentile (`q` in [0, 100]).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "empty input");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q / 100.0 * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    }
}

/// A labeled confusion matrix with row-normalized percentage views.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    /// counts[actual][predicted]
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over the given class labels.
    pub fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        assert!(n >= 2, "need at least two classes");
        ConfusionMatrix {
            labels,
            counts: vec![vec![0; n]; n],
        }
    }

    /// Builds a matrix from parallel class-id slices.
    pub fn from_predictions(labels: Vec<String>, pred: &[f64], truth: &[f64]) -> Self {
        let mut m = Self::new(labels);
        for (p, t) in pred.iter().zip(truth) {
            m.record(*t as usize, *p as usize);
        }
        m
    }

    /// Records one (actual, predicted) observation.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Class labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw count for (actual, predicted).
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total observations whose actual class is `actual` (the paper's
    /// "Total" column).
    pub fn row_total(&self, actual: usize) -> u64 {
        self.counts[actual].iter().sum()
    }

    /// Row-normalized percentage, as the paper prints (e.g. "96.41%").
    pub fn percent(&self, actual: usize, predicted: usize) -> f64 {
        let total = self.row_total(actual);
        if total == 0 {
            return 0.0;
        }
        self.counts[actual][predicted] as f64 / total as f64 * 100.0
    }

    /// Overall accuracy across all cells.
    pub fn overall_accuracy(&self) -> f64 {
        let correct: u64 = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        let total: u64 = (0..self.labels.len()).map(|i| self.row_total(i)).sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Renders the paper-style table (rows = actual, columns = predicted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Actual\\Pred");
        for l in &self.labels {
            out.push_str(&format!("\t{l}"));
        }
        out.push_str("\tTotal\n");
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(l);
            for j in 0..self.labels.len() {
                out.push_str(&format!("\t{:.2}%", self.percent(i, j)));
            }
            out.push_str(&format!("\t{}\n", self.row_total(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[2.0, 2.0, 1.0]), 1.0);
    }

    #[test]
    fn mrae_skips_zero_truth() {
        let m = mrae(&[110.0, 5.0], &[100.0, 0.0]);
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn errors_signed() {
        assert_eq!(errors(&[3.0, 1.0], &[1.0, 3.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0.0, 1.0, 2.0, 1.0], &[0.0, 1.0, 1.0, 1.0]), 0.75);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 25.0), 2.0);
        assert!((percentile(&v, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 50.0), 3.0);
    }

    #[test]
    fn confusion_matrix_percentages() {
        let mut m = ConfusionMatrix::new(vec!["non-video".into(), "video".into()]);
        for _ in 0..983 {
            m.record(0, 0);
        }
        for _ in 0..17 {
            m.record(0, 1);
        }
        for _ in 0..500 {
            m.record(1, 1);
        }
        assert!((m.percent(0, 0) - 98.3).abs() < 1e-9);
        assert!((m.percent(0, 1) - 1.7).abs() < 1e-9);
        assert_eq!(m.percent(1, 0), 0.0);
        assert_eq!(m.row_total(0), 1000);
        assert!((m.overall_accuracy() - (983.0 + 500.0) / 1500.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_from_predictions() {
        let m = ConfusionMatrix::from_predictions(
            vec!["a".into(), "b".into()],
            &[0.0, 1.0, 1.0],
            &[0.0, 0.0, 1.0],
        );
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 1);
        let rendered = m.render();
        assert!(rendered.contains("50.00%"));
        assert!(rendered.contains("Total"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_length_mismatch() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty() {
        let _ = percentile(&[], 50.0);
    }
}
