//! Feature-matrix container shared by trees, forests and cross-validation.

use serde::{Deserialize, Serialize};

/// A dense row-major feature matrix with a target vector.
///
/// Regression targets are used as-is; classification targets must be
/// integer class ids stored as `f64` (0.0, 1.0, ...).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<f64>,
    y: Vec<f64>,
    n_features: usize,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates an empty dataset with named features.
    pub fn new(feature_names: Vec<String>) -> Self {
        assert!(
            !feature_names.is_empty(),
            "dataset needs at least one feature"
        );
        Dataset {
            x: Vec::new(),
            y: Vec::new(),
            n_features: feature_names.len(),
            feature_names,
        }
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics if the row width doesn't match or contains NaN.
    pub fn push(&mut self, row: &[f64], target: f64) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(
            row.iter().all(|v| v.is_finite()),
            "non-finite feature value"
        );
        assert!(target.is_finite(), "non-finite target");
        self.x.extend_from_slice(row);
        self.y.push(target);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One sample row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Target of sample `i`.
    pub fn target(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.y
    }

    /// Number of distinct classes assuming integer class-id targets.
    pub fn n_classes(&self) -> usize {
        self.y
            .iter()
            .map(|&v| v as usize)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Builds a sub-dataset from the given sample indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone());
        for &i in indices {
            out.push(self.row(i), self.y[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(names(2));
        d.push(&[1.0, 2.0], 10.0);
        d.push(&[3.0, 4.0], 20.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.target(0), 10.0);
        assert_eq!(d.targets(), &[10.0, 20.0]);
        assert!(!d.is_empty());
    }

    #[test]
    fn subset_picks_rows() {
        let mut d = Dataset::new(names(1));
        for i in 0..5 {
            d.push(&[i as f64], i as f64 * 10.0);
        }
        let s = d.subset(&[4, 0, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), &[4.0]);
        assert_eq!(s.target(1), 0.0);
        assert_eq!(s.target(2), 20.0);
    }

    #[test]
    fn n_classes_from_targets() {
        let mut d = Dataset::new(names(1));
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 2.0);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(Dataset::new(names(1)).n_classes(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut d = Dataset::new(names(2));
        d.push(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let mut d = Dataset::new(names(1));
        d.push(&[f64::NAN], 0.0);
    }
}
