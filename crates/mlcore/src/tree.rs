//! CART decision trees: regression by variance (SSE) reduction,
//! classification by Gini impurity.

use crate::dataset::Dataset;
use crate::forest::Task;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree-growing hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features sampled per node (`None` = all, CART style).
    pub mtry: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_leaf: 2,
            min_samples_split: 4,
            mtry: None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    task: Task,
    /// Un-normalized impurity decrease per feature.
    importances_raw: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on the samples selected by `indices`.
    ///
    /// # Panics
    /// Panics if `indices` is empty.
    pub fn fit(
        data: &Dataset,
        indices: &[usize],
        task: Task,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            task,
            importances_raw: vec![0.0; data.n_features()],
        };
        let mut idx = indices.to_vec();
        tree.grow(data, &mut idx, params, rng, 0);
        tree
    }

    /// Predicts one sample: mean target (regression) or class id
    /// (classification).
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Raw (unnormalized) impurity-decrease importances.
    pub fn importances_raw(&self) -> &[f64] {
        &self.importances_raw
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Grows a subtree over `idx` (reordered in place); returns its node id.
    fn grow(
        &mut self,
        data: &Dataset,
        idx: &mut [usize],
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
    ) -> usize {
        let leaf_value = match self.task {
            Task::Regression => mean(data, idx),
            Task::Classification { n_classes } => majority(data, idx, n_classes),
        };
        if depth >= params.max_depth
            || idx.len() < params.min_samples_split
            || idx.len() < 2 * params.min_samples_leaf
        {
            return self.push_leaf(leaf_value);
        }

        let parent_impurity = self.node_impurity(data, idx);
        if parent_impurity <= 1e-12 {
            return self.push_leaf(leaf_value);
        }

        // Candidate features: all, or a random subset for forests.
        let n_feat = data.n_features();
        let mut feats: Vec<usize> = (0..n_feat).collect();
        if let Some(m) = params.mtry {
            feats.shuffle(rng);
            feats.truncate(m.clamp(1, n_feat));
        }

        let mut best: Option<(f64, usize, f64)> = None; // (decrease, feature, threshold)
        for &f in &feats {
            if let Some((decrease, thr)) = self.best_split_on(data, idx, f, params) {
                if best.is_none_or(|(d, _, _)| decrease > d) {
                    best = Some((decrease, f, thr));
                }
            }
        }
        let Some((decrease, feature, threshold)) = best else {
            return self.push_leaf(leaf_value);
        };

        self.importances_raw[feature] += decrease;

        // Partition indices in place.
        let mut split_point = 0;
        for i in 0..idx.len() {
            if data.row(idx[i])[feature] <= threshold {
                idx.swap(i, split_point);
                split_point += 1;
            }
        }
        // Floating-point midpoints between near-identical values can round
        // onto one side and produce an empty partition; fall back to a
        // leaf rather than recurse forever.
        if split_point == 0 || split_point == idx.len() {
            return self.push_leaf(leaf_value);
        }

        // Reserve this node id, then grow children.
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: leaf_value }); // placeholder
        let (left_idx, right_idx) = idx.split_at_mut(split_point);
        let left = self.grow(data, left_idx, params, rng, depth + 1);
        let right = self.grow(data, right_idx, params, rng, depth + 1);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    fn push_leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }

    /// Impurity of a node: SSE for regression, n·Gini for classification
    /// (both on the same "total decrease" scale).
    fn node_impurity(&self, data: &Dataset, idx: &[usize]) -> f64 {
        match self.task {
            Task::Regression => {
                let (mut s, mut s2) = (0.0, 0.0);
                for &i in idx {
                    let y = data.target(i);
                    s += y;
                    s2 += y * y;
                }
                s2 - s * s / idx.len() as f64
            }
            Task::Classification { n_classes } => {
                let mut counts = vec![0.0f64; n_classes];
                for &i in idx {
                    counts[data.target(i) as usize] += 1.0;
                }
                let n = idx.len() as f64;
                n * (1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>())
            }
        }
    }

    /// Best split on one feature: returns (impurity decrease, threshold).
    fn best_split_on(
        &self,
        data: &Dataset,
        idx: &[usize],
        feature: usize,
        params: &TreeParams,
    ) -> Option<(f64, f64)> {
        let mut pairs: Vec<(f64, f64)> = idx
            .iter()
            .map(|&i| (data.row(i)[feature], data.target(i)))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let n = pairs.len();
        let parent = self.node_impurity(data, idx);

        match self.task {
            Task::Regression => {
                let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
                let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
                let (mut ls, mut lq) = (0.0, 0.0);
                let mut best: Option<(f64, f64)> = None;
                for k in 0..n - 1 {
                    ls += pairs[k].1;
                    lq += pairs[k].1 * pairs[k].1;
                    if pairs[k + 1].0 <= pairs[k].0 {
                        continue; // no boundary between equal values
                    }
                    let nl = (k + 1) as f64;
                    let nr = (n - k - 1) as f64;
                    if (nl as usize) < params.min_samples_leaf
                        || (nr as usize) < params.min_samples_leaf
                    {
                        continue;
                    }
                    let sse_l = lq - ls * ls / nl;
                    let sse_r = (total_sq - lq) - (total_sum - ls) * (total_sum - ls) / nr;
                    let decrease = parent - sse_l - sse_r;
                    if decrease > 1e-12 && best.is_none_or(|(d, _)| decrease > d) {
                        best = Some((decrease, (pairs[k].0 + pairs[k + 1].0) / 2.0));
                    }
                }
                best
            }
            Task::Classification { n_classes } => {
                let mut total = vec![0.0f64; n_classes];
                for p in &pairs {
                    total[p.1 as usize] += 1.0;
                }
                let mut left = vec![0.0f64; n_classes];
                let mut best: Option<(f64, f64)> = None;
                for k in 0..n - 1 {
                    left[pairs[k].1 as usize] += 1.0;
                    if pairs[k + 1].0 <= pairs[k].0 {
                        continue;
                    }
                    let nl = (k + 1) as f64;
                    let nr = (n - k - 1) as f64;
                    if (nl as usize) < params.min_samples_leaf
                        || (nr as usize) < params.min_samples_leaf
                    {
                        continue;
                    }
                    let gini = |counts: &[f64], n: f64, other: Option<&[f64]>| -> f64 {
                        let s: f64 = counts
                            .iter()
                            .enumerate()
                            .map(|(c, &v)| {
                                let v = match other {
                                    Some(tot) => tot[c] - v,
                                    None => v,
                                };
                                (v / n) * (v / n)
                            })
                            .sum();
                        n * (1.0 - s)
                    };
                    let gl = gini(&left, nl, None);
                    let gr = gini(&left, nr, Some(&total));
                    let decrease = parent - gl - gr;
                    if decrease > 1e-12 && best.is_none_or(|(d, _)| decrease > d) {
                        best = Some((decrease, (pairs[k].0 + pairs[k + 1].0) / 2.0));
                    }
                }
                best
            }
        }
    }
}

fn mean(data: &Dataset, idx: &[usize]) -> f64 {
    idx.iter().map(|&i| data.target(i)).sum::<f64>() / idx.len() as f64
}

fn majority(data: &Dataset, idx: &[usize], n_classes: usize) -> f64 {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[data.target(i) as usize] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(cls, _)| cls as f64)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn xor_like() -> Dataset {
        // y = 1 iff x0 > 0.5 XOR x1 > 0.5 — needs depth 2.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let y = if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 };
            // jitter inputs around 0.25 / 0.75
            let x0 = 0.25 + a * 0.5 + (i as f64 % 7.0) * 0.001;
            let x1 = 0.25 + b * 0.5 + (i as f64 % 5.0) * 0.001;
            d.push(&[x0, x1], y);
        }
        d
    }

    #[test]
    fn regression_fits_step_function() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(&[x], if x < 0.5 { 1.0 } else { 5.0 });
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(
            &d,
            &idx,
            Task::Regression,
            &TreeParams::default(),
            &mut rng(),
        );
        assert!((t.predict(&[0.2]) - 1.0).abs() < 1e-9);
        assert!((t.predict(&[0.8]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classification_solves_xor() {
        let d = xor_like();
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(
            &d,
            &idx,
            Task::Classification { n_classes: 2 },
            &TreeParams::default(),
            &mut rng(),
        );
        assert_eq!(t.predict(&[0.25, 0.25]), 0.0);
        assert_eq!(t.predict(&[0.75, 0.25]), 1.0);
        assert_eq!(t.predict(&[0.25, 0.75]), 1.0);
        assert_eq!(t.predict(&[0.75, 0.75]), 0.0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            d.push(&[i as f64], 7.0);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(
            &d,
            &idx,
            Task::Regression,
            &TreeParams::default(),
            &mut rng(),
        );
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[3.0]), 7.0);
    }

    #[test]
    fn max_depth_zero_is_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 10.0);
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(&d, &idx, Task::Regression, &params, &mut rng());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[0.0]), 5.0); // mean
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..10 {
            d.push(&[i as f64], if i == 0 { 100.0 } else { 0.0 });
        }
        // With min_samples_leaf = 3 the outlier cannot be isolated.
        let params = TreeParams {
            min_samples_leaf: 3,
            ..Default::default()
        };
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(&d, &idx, Task::Regression, &params, &mut rng());
        // Leftmost leaf holds >= 3 samples, so prediction < 100.
        assert!(t.predict(&[0.0]) < 50.0);
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()]);
        for i in 0..200 {
            let x = i as f64 / 200.0;
            let noise = ((i * 37) % 83) as f64 / 83.0;
            d.push(&[x, noise], if x < 0.5 { 0.0 } else { 10.0 });
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(
            &d,
            &idx,
            Task::Regression,
            &TreeParams::default(),
            &mut rng(),
        );
        let imp = t.importances_raw();
        assert!(imp[0] > imp[1] * 10.0, "importances {imp:?}");
    }

    #[test]
    fn duplicate_feature_values_never_split_between_equals() {
        let mut d = Dataset::new(vec!["x".into()]);
        // All x equal: no split possible despite varying y.
        for i in 0..20 {
            d.push(&[1.0], i as f64);
        }
        let idx: Vec<usize> = (0..d.len()).collect();
        let t = DecisionTree::fit(
            &d,
            &idx,
            Task::Regression,
            &TreeParams::default(),
            &mut rng(),
        );
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_rejected() {
        let d = Dataset::new(vec!["x".into()]);
        let _ = DecisionTree::fit(
            &d,
            &[],
            Task::Regression,
            &TreeParams::default(),
            &mut rng(),
        );
    }
}
