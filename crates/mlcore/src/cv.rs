//! k-fold cross-validation. The paper reports every ML accuracy number
//! after 5-fold cross-validation (§4.3).

use crate::dataset::Dataset;
use crate::forest::{RandomForest, RandomForestParams, Task};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffled fold assignments: returns `k` disjoint index sets covering
/// `0..n`.
///
/// # Panics
/// Panics if `k < 2` or `n < k`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    assert!(n >= k, "fewer samples than folds");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, s) in idx.into_iter().enumerate() {
        folds[i % k].push(s);
    }
    folds
}

/// Out-of-fold predictions: each sample is predicted by the forest trained
/// on the other `k − 1` folds. Returns predictions aligned with the
/// dataset's sample order.
pub fn cross_val_predict(
    data: &Dataset,
    task: Task,
    params: &RandomForestParams,
    k: usize,
    seed: u64,
) -> Vec<f64> {
    let folds = kfold_indices(data.len(), k, seed);
    let mut preds = vec![f64::NAN; data.len()];
    for (fi, test_idx) in folds.iter().enumerate() {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fi)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let fold_params = RandomForestParams {
            seed: params.seed ^ (fi as u64) << 32,
            ..*params
        };
        let forest = RandomForest::fit(&train, task, &fold_params);
        for &i in test_idx {
            preds[i] = forest.predict(data.row(i));
        }
    }
    debug_assert!(preds.iter().all(|p| p.is_finite()));
    preds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_everything() {
        let folds = kfold_indices(103, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Balanced within one element.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn folds_are_shuffled_but_deterministic() {
        let a = kfold_indices(50, 5, 7);
        let b = kfold_indices(50, 5, 7);
        let c = kfold_indices(50, 5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not simply 0..10 in the first fold.
        assert_ne!(a[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cross_val_predictions_generalize_on_learnable_data() {
        let mut d = Dataset::new(vec!["x".into()]);
        for i in 0..300 {
            let x = (i % 100) as f64 / 100.0;
            d.push(&[x], 2.0 * x);
        }
        let params = RandomForestParams {
            n_trees: 15,
            seed: 3,
            ..Default::default()
        };
        let preds = cross_val_predict(&d, Task::Regression, &params, 5, 11);
        let m = crate::metrics::mae(&preds, d.targets());
        assert!(m < 0.1, "cv MAE {m}");
    }

    #[test]
    #[should_panic(expected = "fewer samples than folds")]
    fn too_few_samples_rejected() {
        let _ = kfold_indices(3, 5, 0);
    }
}
