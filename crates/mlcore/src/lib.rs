//! # vcaml-mlcore — machine-learning substrate
//!
//! The Rust ecosystem has no mature random-forest implementation available
//! offline, so this crate implements the paper's model family from
//! scratch:
//!
//! * CART decision trees ([`tree`]) for regression (variance reduction)
//!   and classification (Gini impurity),
//! * random forests ([`forest`]) with bootstrap bagging, per-node feature
//!   subsampling, multi-threaded training, and impurity-based feature
//!   importance (the paper's Figures 5/7/9 and A.4–A.9),
//! * ridge regression ([`linear`]) as the classical baseline the paper's
//!   model comparison needs,
//! * k-fold cross-validation ([`cv`]) — the paper reports all ML numbers
//!   over 5-fold CV (§4.3),
//! * the paper's evaluation metrics ([`metrics`]): MAE, MRAE, accuracy,
//!   and normalized confusion matrices.

pub mod cv;
pub mod dataset;
pub mod forest;
pub mod linear;
pub mod metrics;
pub mod tree;

pub use cv::{cross_val_predict, kfold_indices};
pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestParams, Task};
pub use linear::RidgeRegression;
pub use metrics::{accuracy, mae, mrae, percentile, ConfusionMatrix};
pub use tree::DecisionTree;
