//! Random forests: bootstrap-bagged CART trees with per-node feature
//! subsampling, multi-threaded fitting, and impurity-based feature
//! importance.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Learning task. The paper regresses frame rate / bitrate / frame jitter
/// and classifies resolution (§3.2.2, §5.1.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Task {
    /// Predict a continuous value (forest averages tree outputs).
    Regression,
    /// Predict a class id (forest takes a majority vote).
    Classification {
        /// Number of classes (ids `0..n_classes`).
        n_classes: usize,
    },
}

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features tried per split (`None` = sqrt(p) for classification,
    /// p/3 for regression — the scikit-learn/Breiman defaults).
    pub mtry: Option<usize>,
    /// RNG seed (bootstrap + feature subsampling).
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 40,
            max_depth: 14,
            min_samples_leaf: 2,
            mtry: None,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    task: Task,
    feature_names: Vec<String>,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fits a forest. Trees are trained in parallel across available cores.
    ///
    /// # Panics
    /// Panics if `data` is empty or (for classification) has no classes.
    pub fn fit(data: &Dataset, task: Task, params: &RandomForestParams) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        if let Task::Classification { n_classes } = task {
            assert!(n_classes >= 2, "classification needs at least two classes");
            assert!(
                data.targets()
                    .iter()
                    .all(|&y| (y as usize) < n_classes && y >= 0.0),
                "target outside class range"
            );
        }
        let p = data.n_features();
        let mtry = params.mtry.unwrap_or(match task {
            Task::Classification { .. } => (p as f64).sqrt().ceil() as usize,
            Task::Regression => (p / 3).max(1),
        });
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_leaf: params.min_samples_leaf,
            min_samples_split: params.min_samples_leaf * 2,
            mtry: Some(mtry.clamp(1, p)),
        };
        let n = data.len();

        // Pre-derive one seed per tree so results are independent of the
        // thread schedule.
        let mut seeder = StdRng::seed_from_u64(params.seed);
        let seeds: Vec<u64> = (0..params.n_trees).map(|_| seeder.gen()).collect();

        let n_threads = std::thread::available_parallelism()
            .map_or(4, |c| c.get())
            .min(16);
        let trees: Vec<DecisionTree> = std::thread::scope(|scope| {
            let chunks: Vec<Vec<u64>> = seeds
                .chunks(params.n_trees.div_ceil(n_threads).max(1))
                .map(<[u64]>::to_vec)
                .collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|seed| {
                                let mut rng = StdRng::seed_from_u64(seed);
                                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                                DecisionTree::fit(data, &idx, task, &tree_params, &mut rng)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("tree fit panicked")) // lint: allow(no-unwrap-in-lib) -- join re-raises a tree-fit panic instead of hiding it
                .collect()
        });

        // Aggregate + normalize importances.
        let mut importances = vec![0.0; p];
        for t in &trees {
            for (acc, &v) in importances.iter_mut().zip(t.importances_raw()) {
                *acc += v;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }

        RandomForest {
            trees,
            task,
            feature_names: data.feature_names().to_vec(),
            importances,
        }
    }

    /// Predicts one sample.
    pub fn predict(&self, row: &[f64]) -> f64 {
        match self.task {
            Task::Regression => {
                self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
            }
            Task::Classification { n_classes } => {
                let mut votes = vec![0usize; n_classes];
                for t in &self.trees {
                    votes[t.predict(row) as usize] += 1;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, v)| *v)
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0)
            }
        }
    }

    /// Predicts every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Normalized impurity-based feature importances (sum to 1).
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// `(name, importance)` pairs sorted descending — the paper's top-5
    /// feature plots.
    pub fn top_features(&self, k: usize) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(self.importances.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs.truncate(k);
        pairs
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The task this forest was fitted for.
    pub fn task(&self) -> Task {
        self.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_regression(n: usize) -> Dataset {
        // y = 3*x0 + noise-ish deterministic residual; x1 is noise.
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()]);
        for i in 0..n {
            let x0 = (i % 100) as f64 / 100.0;
            let x1 = ((i * 61) % 97) as f64 / 97.0;
            d.push(&[x0, x1], 3.0 * x0 + 0.05 * ((i % 7) as f64));
        }
        d
    }

    fn make_classification(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..n {
            let a = (i % 50) as f64 / 50.0;
            let b = ((i * 31) % 71) as f64 / 71.0;
            let c = ((i * 17) % 43) as f64 / 43.0;
            let y = if a < 0.33 {
                0.0
            } else if a < 0.66 {
                1.0
            } else {
                2.0
            };
            d.push(&[a, b, c], y);
        }
        d
    }

    #[test]
    fn regression_low_error_in_sample() {
        let d = make_regression(600);
        let f = RandomForest::fit(&d, Task::Regression, &RandomForestParams::default());
        let preds = f.predict_all(&d);
        let mae: f64 = preds
            .iter()
            .zip(d.targets())
            .map(|(p, y)| (p - y).abs())
            .sum::<f64>()
            / d.len() as f64;
        assert!(mae < 0.15, "in-sample MAE {mae}");
    }

    #[test]
    fn classification_recovers_bands() {
        let d = make_classification(600);
        let f = RandomForest::fit(
            &d,
            Task::Classification { n_classes: 3 },
            &RandomForestParams::default(),
        );
        assert_eq!(f.predict(&[0.1, 0.5, 0.5]), 0.0);
        assert_eq!(f.predict(&[0.5, 0.5, 0.5]), 1.0);
        assert_eq!(f.predict(&[0.9, 0.5, 0.5]), 2.0);
    }

    #[test]
    fn importances_normalized_and_ranked() {
        let d = make_regression(500);
        let f = RandomForest::fit(&d, Task::Regression, &RandomForestParams::default());
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.7, "signal importance {imp:?}");
        let top = f.top_features(1);
        assert_eq!(top[0].0, "x0");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = make_regression(300);
        let p = RandomForestParams {
            seed: 9,
            n_trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&d, Task::Regression, &p);
        let b = RandomForest::fit(&d, Task::Regression, &p);
        let row = [0.37, 0.2];
        assert_eq!(a.predict(&row), b.predict(&row));
        let p2 = RandomForestParams { seed: 10, ..p };
        let c = RandomForest::fit(&d, Task::Regression, &p2);
        // Different seed should (almost surely) differ somewhere.
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [i as f64 / 50.0, 0.5]).collect();
        assert!(rows.iter().any(|r| a.predict(r) != c.predict(r)));
    }

    #[test]
    fn n_trees_respected() {
        let d = make_regression(100);
        let p = RandomForestParams {
            n_trees: 7,
            ..Default::default()
        };
        let f = RandomForest::fit(&d, Task::Regression, &p);
        assert_eq!(f.n_trees(), 7);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let d = Dataset::new(vec!["x".into()]);
        let _ = RandomForest::fit(&d, Task::Regression, &RandomForestParams::default());
    }

    #[test]
    #[should_panic(expected = "class range")]
    fn out_of_range_class_rejected() {
        let mut d = Dataset::new(vec!["x".into()]);
        d.push(&[0.0], 5.0);
        let _ = RandomForest::fit(
            &d,
            Task::Classification { n_classes: 2 },
            &RandomForestParams::default(),
        );
    }
}
