//! Ridge (L2-regularized linear) regression — one of the "classical
//! supervised ML models" the paper compares random forests against
//! (§4.3). Solved exactly via normal equations with Cholesky
//! decomposition; with ≤ a few dozen features that is both fast and
//! numerically safe.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A fitted ridge-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Per-feature means used for centering.
    x_mean: Vec<f64>,
    /// Per-feature scales used for standardization.
    x_scale: Vec<f64>,
}

impl RidgeRegression {
    /// Fits with regularization strength `lambda` (≥ 0). Features are
    /// standardized internally, so `lambda` is scale-free.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `lambda` is negative/non-finite.
    pub fn fit(data: &Dataset, lambda: f64) -> Self {
        assert!(!data.is_empty(), "empty dataset");
        assert!(lambda >= 0.0 && lambda.is_finite(), "invalid lambda");
        let n = data.len();
        let p = data.n_features();

        // Standardize.
        let mut x_mean = vec![0.0; p];
        for i in 0..n {
            for (m, &v) in x_mean.iter_mut().zip(data.row(i)) {
                *m += v;
            }
        }
        for m in &mut x_mean {
            *m /= n as f64;
        }
        let mut x_scale = vec![0.0; p];
        for i in 0..n {
            for j in 0..p {
                x_scale[j] += (data.row(i)[j] - x_mean[j]).powi(2);
            }
        }
        for s in &mut x_scale {
            *s = (*s / n as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered at zero
            }
        }
        let y_mean = data.targets().iter().sum::<f64>() / n as f64;

        // Normal equations on standardized X: (XᵀX + λI) w = Xᵀy.
        let mut xtx = vec![0.0; p * p];
        let mut xty = vec![0.0; p];
        let mut z = vec![0.0; p];
        for i in 0..n {
            for j in 0..p {
                z[j] = (data.row(i)[j] - x_mean[j]) / x_scale[j];
            }
            let yc = data.target(i) - y_mean;
            for j in 0..p {
                xty[j] += z[j] * yc;
                for k in j..p {
                    xtx[j * p + k] += z[j] * z[k];
                }
            }
        }
        for j in 0..p {
            for k in 0..j {
                xtx[j * p + k] = xtx[k * p + j];
            }
            xtx[j * p + j] += lambda.max(1e-9) * n as f64 / n as f64 + 1e-9;
        }
        let weights = cholesky_solve(&xtx, &xty, p);
        RidgeRegression {
            weights,
            bias: y_mean,
            x_mean,
            x_scale,
        }
    }

    /// Predicts one sample.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        let mut y = self.bias;
        for (j, &x) in row.iter().enumerate() {
            y += self.weights[j] * (x - self.x_mean[j]) / self.x_scale[j];
        }
        y
    }

    /// Predicts every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Standardized coefficients (effect per standard deviation of each
    /// feature) — a linear analogue of feature importance.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

/// Solves `A x = b` for symmetric positive-definite `A` (row-major p×p).
fn cholesky_solve(a: &[f64], b: &[f64], p: usize) -> Vec<f64> {
    // Decompose A = L Lᵀ.
    let mut l = vec![0.0; p * p];
    for i in 0..p {
        for j in 0..=i {
            let mut sum = a[i * p + j];
            for k in 0..j {
                sum -= l[i * p + k] * l[j * p + k];
            }
            if i == j {
                l[i * p + i] = sum.max(1e-12).sqrt();
            } else {
                l[i * p + j] = sum / l[j * p + j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = vec![0.0; p];
    for i in 0..p {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * p + k] * y[k];
        }
        y[i] = sum / l[i * p + i];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; p];
    for i in (0..p).rev() {
        let mut sum = y[i];
        for k in i + 1..p {
            sum -= l[k * p + i] * x[k];
        }
        x[i] = sum / l[i * p + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let mut d = Dataset::new(names(2));
        for i in 0..100 {
            let a = i as f64 / 10.0;
            let b = ((i * 7) % 13) as f64;
            d.push(&[a, b], 3.0 * a - 2.0 * b + 5.0);
        }
        let m = RidgeRegression::fit(&d, 1e-6);
        for i in 0..100 {
            let err = (m.predict(d.row(i)) - d.target(i)).abs();
            assert!(err < 1e-6, "err {err}");
        }
    }

    #[test]
    fn constant_feature_handled() {
        let mut d = Dataset::new(names(2));
        for i in 0..50 {
            d.push(&[1.0, i as f64], 2.0 * i as f64);
        }
        let m = RidgeRegression::fit(&d, 1e-6);
        assert!((m.predict(&[1.0, 10.0]) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn regularization_shrinks_coefficients() {
        let mut d = Dataset::new(names(1));
        for i in 0..30 {
            d.push(&[i as f64], 4.0 * i as f64);
        }
        let loose = RidgeRegression::fit(&d, 1e-6);
        let tight = RidgeRegression::fit(&d, 100.0);
        assert!(tight.coefficients()[0].abs() < loose.coefficients()[0].abs());
    }

    #[test]
    fn cannot_fit_nonlinear_step() {
        // Sanity: the linear model is genuinely weaker than a tree on a
        // step function, which is why the paper lands on forests.
        let mut d = Dataset::new(names(1));
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(&[x], if x < 0.5 { 0.0 } else { 10.0 });
        }
        let m = RidgeRegression::fit(&d, 1e-3);
        let preds = m.predict_all(&d);
        let mae = crate::metrics::mae(&preds, d.targets());
        assert!(
            mae > 1.0,
            "linear model unexpectedly solved a step (MAE {mae})"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_rejected() {
        let d = Dataset::new(names(1));
        let _ = RidgeRegression::fit(&d, 1.0);
    }
}
