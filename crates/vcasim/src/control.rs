//! Non-RTP session traffic: the DTLS handshake at call start and periodic
//! STUN keepalives.
//!
//! These are the packets behind the paper's Table 2 observation that a
//! small fraction of non-video packets get misclassified as video: "these
//! misclassified packets are server hello messages over DTLSv1.2 and the
//! key exchanges at the beginning of the call".

use rand::rngs::StdRng;
use rand::Rng;

/// STUN binding-indication keepalive interval (WebRTC sends one roughly
/// every 2.5 s on an active pair; we use 2 s).
pub const STUN_INTERVAL_MS: u64 = 2_000;

/// A non-RTP control packet scheduled for transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPacket {
    /// Offset from call start, milliseconds.
    pub at_ms: u64,
    /// UDP payload size in bytes.
    pub payload: usize,
}

/// The downstream DTLS 1.2 handshake flight sequence as seen at the
/// receiver: ServerHello + Certificate (large, frequently above any video
/// size threshold), ServerKeyExchange/Done, ChangeCipherSpec/Finished,
/// preceded by STUN connectivity checks.
pub fn dtls_handshake(rng: &mut StdRng) -> Vec<ControlPacket> {
    let mut out = Vec::new();
    // STUN binding requests/responses during ICE.
    let mut t = 0u64;
    for _ in 0..rng.gen_range(3..6) {
        out.push(ControlPacket {
            at_ms: t,
            payload: rng.gen_range(20..120),
        });
        t += rng.gen_range(5..40);
    }
    // ServerHello + Certificate flight: 1–2 near-MTU records.
    for _ in 0..rng.gen_range(1..3) {
        out.push(ControlPacket {
            at_ms: t,
            payload: rng.gen_range(900..1250),
        });
        t += rng.gen_range(2..10);
    }
    // ServerKeyExchange + ServerHelloDone.
    out.push(ControlPacket {
        at_ms: t,
        payload: rng.gen_range(300..600),
    });
    t += rng.gen_range(10..40);
    // ChangeCipherSpec + Finished.
    out.push(ControlPacket {
        at_ms: t,
        payload: rng.gen_range(50..120),
    });
    out
}

/// STUN keepalive payload size (binding indication).
pub fn stun_keepalive_payload(rng: &mut StdRng) -> usize {
    rng.gen_range(20..64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn handshake_has_large_records() {
        let mut rng = StdRng::seed_from_u64(4);
        let hs = dtls_handshake(&mut rng);
        assert!(hs.iter().any(|p| p.payload >= 900), "no large DTLS record");
        assert!(hs.len() >= 6);
    }

    #[test]
    fn handshake_is_time_ordered() {
        let mut rng = StdRng::seed_from_u64(5);
        let hs = dtls_handshake(&mut rng);
        assert!(hs.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // Whole handshake finishes well under a second.
        assert!(hs.last().unwrap().at_ms < 1_000);
    }

    #[test]
    fn stun_keepalives_are_small() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let p = stun_keepalive_payload(&mut rng);
            assert!(p < 64);
        }
    }
}
