//! Per-VCA behaviour profiles.
//!
//! The numeric anchors come from the paper: Webex's median lab bitrate is
//! ~500 kbps vs ~1700 kbps for Teams (§4.2); Meet serves heights
//! {180, 270, 360} in the lab and additionally {540, 720} in the wild;
//! Teams serves 11 heights from 90 to 720 (with 404 the dominant medium
//! value); Webex serves {180, 360} in the lab and a single height in the
//! wild (§5.1.5, §5.2.4). Meet fragments a fraction of frames into
//! *unequal* packets — 4.26% of lab frames and 14.48% of real-world frames
//! exceed the 2-byte intra-frame spread (§5.2.1).

use serde::{Deserialize, Serialize};
use vcaml_rtp::{PayloadMap, VcaKind};

/// One rung of a VCA's resolution ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderRung {
    /// Frame height in pixels (the paper's resolution measure).
    pub height: u32,
    /// Minimum target bitrate (kbps) at which this rung is selected.
    pub min_kbps: f64,
}

/// Static behaviour profile for one VCA in one environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcaProfile {
    /// Which VCA this models.
    pub vca: VcaKind,
    /// RTP payload-type mapping in this environment.
    pub payload_map: PayloadMap,
    /// Resolution ladder, ascending by `min_kbps`.
    pub ladder: Vec<LadderRung>,
    /// Floor of the encoder target bitrate (kbps).
    pub min_bitrate_kbps: f64,
    /// Ceiling of the encoder target bitrate (kbps).
    pub max_bitrate_kbps: f64,
    /// Initial target bitrate (kbps).
    pub start_bitrate_kbps: f64,
    /// Maximum video frame rate.
    pub max_fps: u32,
    /// Largest RTP payload the packetizer produces per packet (bytes).
    pub max_payload: usize,
    /// Probability that a frame is fragmented unequally (the Meet/VP8
    /// anomaly); 0 for the H.264 VCAs.
    pub unequal_frag_prob: f64,
    /// Whether a retransmission stream exists (drives NACK replies and
    /// keepalives).
    pub has_rtx: bool,
    /// IP total length of rtx-stream keepalive packets (the paper observes
    /// 304 bytes for Teams).
    pub keepalive_size: u16,
    /// Interval between rtx keepalives, milliseconds.
    pub keepalive_interval_ms: u64,
    /// Coefficient of variation of per-frame encoded size (VBR dispersion).
    pub frame_size_cv: f64,
}

impl VcaProfile {
    /// The in-lab profile for a VCA.
    pub fn lab(vca: VcaKind) -> Self {
        match vca {
            VcaKind::Meet => VcaProfile {
                vca,
                payload_map: PayloadMap::lab(vca),
                ladder: vec![
                    LadderRung {
                        height: 180,
                        min_kbps: 0.0,
                    },
                    LadderRung {
                        height: 270,
                        min_kbps: 450.0,
                    },
                    LadderRung {
                        height: 360,
                        min_kbps: 800.0,
                    },
                ],
                min_bitrate_kbps: 60.0,
                max_bitrate_kbps: 2800.0,
                start_bitrate_kbps: 700.0,
                max_fps: 30,
                max_payload: 1160,
                unequal_frag_prob: 0.0426,
                has_rtx: true,
                keepalive_size: 304,
                keepalive_interval_ms: 500,
                frame_size_cv: 0.28,
            },
            VcaKind::Teams => VcaProfile {
                vca,
                payload_map: PayloadMap::lab(vca),
                ladder: vec![
                    LadderRung {
                        height: 90,
                        min_kbps: 0.0,
                    },
                    LadderRung {
                        height: 120,
                        min_kbps: 120.0,
                    },
                    LadderRung {
                        height: 180,
                        min_kbps: 200.0,
                    },
                    LadderRung {
                        height: 240,
                        min_kbps: 350.0,
                    },
                    LadderRung {
                        height: 270,
                        min_kbps: 500.0,
                    },
                    LadderRung {
                        height: 360,
                        min_kbps: 700.0,
                    },
                    LadderRung {
                        height: 404,
                        min_kbps: 1000.0,
                    },
                    LadderRung {
                        height: 480,
                        min_kbps: 1400.0,
                    },
                    LadderRung {
                        height: 540,
                        min_kbps: 1900.0,
                    },
                    LadderRung {
                        height: 630,
                        min_kbps: 2400.0,
                    },
                    LadderRung {
                        height: 720,
                        min_kbps: 3000.0,
                    },
                ],
                min_bitrate_kbps: 80.0,
                max_bitrate_kbps: 4000.0,
                start_bitrate_kbps: 1400.0,
                max_fps: 30,
                max_payload: 1180,
                unequal_frag_prob: 0.0,
                has_rtx: true,
                keepalive_size: 304,
                keepalive_interval_ms: 500,
                frame_size_cv: 0.30,
            },
            VcaKind::Webex => VcaProfile {
                vca,
                payload_map: PayloadMap::lab(vca),
                ladder: vec![
                    LadderRung {
                        height: 180,
                        min_kbps: 0.0,
                    },
                    LadderRung {
                        height: 360,
                        min_kbps: 550.0,
                    },
                ],
                min_bitrate_kbps: 60.0,
                max_bitrate_kbps: 900.0,
                start_bitrate_kbps: 400.0,
                max_fps: 30,
                max_payload: 1150,
                unequal_frag_prob: 0.0,
                has_rtx: true,
                keepalive_size: 304,
                keepalive_interval_ms: 500,
                frame_size_cv: 0.26,
            },
        }
    }

    /// The real-world profile: shifted payload types (§5.2), Meet's higher
    /// resolutions/bitrates (§5.2.4/§5.3), Meet's higher unequal-
    /// fragmentation rate (§5.2.1), Webex without an rtx stream, and Webex
    /// pinned to its single observed resolution.
    pub fn real_world(vca: VcaKind) -> Self {
        let mut p = Self::lab(vca);
        p.payload_map = PayloadMap::real_world(vca);
        match vca {
            VcaKind::Meet => {
                p.ladder.push(LadderRung {
                    height: 540,
                    min_kbps: 1500.0,
                });
                p.ladder.push(LadderRung {
                    height: 720,
                    min_kbps: 2400.0,
                });
                p.max_bitrate_kbps = 4200.0;
                p.start_bitrate_kbps = 1600.0;
                p.unequal_frag_prob = 0.1448;
            }
            VcaKind::Teams => {
                p.start_bitrate_kbps = 1800.0;
            }
            VcaKind::Webex => {
                p.has_rtx = false;
                p.ladder = vec![LadderRung {
                    height: 360,
                    min_kbps: 0.0,
                }];
                p.start_bitrate_kbps = 700.0;
            }
        }
        p
    }

    /// The ladder rung selected at a given target bitrate.
    pub fn rung_for(&self, kbps: f64) -> LadderRung {
        let mut chosen = self.ladder[0];
        for rung in &self.ladder {
            if kbps >= rung.min_kbps {
                chosen = *rung;
            }
        }
        chosen
    }

    /// Target frame rate at a given bitrate: VCAs drop frame rate when the
    /// budget gets tight. Above ~600 kbps the full frame rate is
    /// sustained; below, the rate falls off toward 7 fps (monotone in
    /// bitrate, so rung switches never lower the frame rate).
    pub fn fps_for(&self, kbps: f64) -> f64 {
        let frac = (kbps / 600.0).clamp(0.0, 1.0).sqrt();
        7.0 + frac * (f64::from(self.max_fps) - 7.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_sorted_and_start_at_zero() {
        for vca in VcaKind::ALL {
            for p in [VcaProfile::lab(vca), VcaProfile::real_world(vca)] {
                assert_eq!(p.ladder[0].min_kbps, 0.0, "{vca}");
                for w in p.ladder.windows(2) {
                    assert!(w[0].min_kbps < w[1].min_kbps, "{vca} ladder unsorted");
                    assert!(w[0].height < w[1].height, "{vca} heights unsorted");
                }
            }
        }
    }

    #[test]
    fn lab_resolution_sets_match_paper() {
        let heights = |p: &VcaProfile| p.ladder.iter().map(|r| r.height).collect::<Vec<_>>();
        assert_eq!(
            heights(&VcaProfile::lab(VcaKind::Meet)),
            vec![180, 270, 360]
        );
        assert_eq!(heights(&VcaProfile::lab(VcaKind::Teams)).len(), 11);
        assert_eq!(heights(&VcaProfile::lab(VcaKind::Webex)), vec![180, 360]);
    }

    #[test]
    fn real_world_meet_adds_540_720() {
        let p = VcaProfile::real_world(VcaKind::Meet);
        let hs: Vec<u32> = p.ladder.iter().map(|r| r.height).collect();
        assert!(hs.contains(&540) && hs.contains(&720));
        assert!(p.unequal_frag_prob > 0.14);
    }

    #[test]
    fn real_world_webex_single_resolution_no_rtx() {
        let p = VcaProfile::real_world(VcaKind::Webex);
        assert_eq!(p.ladder.len(), 1);
        assert!(!p.has_rtx);
    }

    #[test]
    fn rung_selection_monotone() {
        let p = VcaProfile::lab(VcaKind::Teams);
        assert_eq!(p.rung_for(50.0).height, 90);
        assert_eq!(p.rung_for(1100.0).height, 404);
        assert_eq!(p.rung_for(9999.0).height, 720);
        let mut last = 0;
        for k in (0..4000).step_by(50) {
            let h = p.rung_for(f64::from(k)).height;
            assert!(h >= last);
            last = h;
        }
    }

    #[test]
    fn fps_scales_with_bitrate() {
        let p = VcaProfile::lab(VcaKind::Meet);
        assert!(p.fps_for(60.0) < 15.0);
        assert!((p.fps_for(2800.0) - 30.0).abs() < 1e-9);
        assert!(p.fps_for(500.0) > p.fps_for(120.0));
    }

    #[test]
    fn teams_keepalive_is_304() {
        assert_eq!(VcaProfile::lab(VcaKind::Teams).keepalive_size, 304);
    }
}
