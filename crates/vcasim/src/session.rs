//! End-to-end call simulation: sender (encoder + pacer + rate control),
//! emulated link, and receiver, orchestrated by a discrete-event loop.
//!
//! The produced [`SessionTrace`] contains the downstream packet sequence a
//! passive monitor at the client's access link would capture (delivered
//! packets only, with arrival timestamps) plus the per-second ground-truth
//! QoE from the receiver model.

use crate::audio::{self, AudioSource};
use crate::codec::FrameSource;
use crate::control::{self, ControlPacket};
use crate::packetizer::{packetize, FragmentPolicy};
use crate::profiles::VcaProfile;
use crate::rate::RateController;
use crate::receiver::{ArrivedPacket, Receiver, SecondTruth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use vcaml_netem::{ConditionSchedule, Link, LinkConfig, LinkVerdict};
use vcaml_netpkt::{CapturedPacket, Timestamp, UdpDatagram};
use vcaml_rtp::{MediaKind, RtpClock, RtpHeader, VcaKind};

/// IPv4 + UDP header overhead, bytes.
const IP_UDP_OVERHEAD: usize = 28;
/// RTP fixed header, bytes.
const RTP_OVERHEAD: usize = 12;

/// Configuration of one simulated call.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// VCA behaviour profile.
    pub profile: VcaProfile,
    /// Network conditions on the downstream path.
    pub schedule: ConditionSchedule,
    /// Call duration in seconds.
    pub duration_secs: u32,
    /// Seed for all randomness in the call.
    pub seed: u64,
    /// Bottleneck queue configuration.
    pub link: LinkConfig,
}

/// One delivered packet as the monitor sees it, with simulator-side ground
/// truth attached (media kind; RTP header when the packet is RTP).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimPacket {
    /// Send time at the far endpoint.
    pub send_ts: Timestamp,
    /// Arrival (capture) time at the monitor / client.
    pub arrival_ts: Timestamp,
    /// IP total length — the "packet size" every method consumes.
    pub ip_total_len: u16,
    /// Ground-truth media class.
    pub media: MediaKind,
    /// RTP header carried (None for DTLS/STUN/RTCP control packets).
    pub rtp: Option<RtpHeader>,
}

/// Result of a simulated call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Which VCA was simulated.
    pub vca: VcaKind,
    /// Delivered packets, sorted by arrival time.
    pub packets: Vec<SimPacket>,
    /// Per-second ground truth (`webrtc-internals` analogue).
    pub truth: Vec<SecondTruth>,
    /// Call duration in seconds.
    pub duration_secs: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    VideoFrame,
    AudioPacket,
    RtxKeepalive,
    StunKeepalive,
    RtcpReport,
    Control(usize),
    Retransmit { seq: u16 },
    RateUpdate,
}

#[derive(Debug, Clone, Copy)]
struct RtxInfo {
    payload_len: usize,
    frame_id: u64,
    frame_packets: u32,
    height: u32,
    rtp_ts: u32,
    retransmitted: bool,
}

struct ArrivalEntry {
    at: Timestamp,
    order: u64,
    pkt: ArrivedPacket,
}

impl PartialEq for ArrivalEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.order) == (other.at, other.order)
    }
}
impl Eq for ArrivalEntry {}
impl PartialOrd for ArrivalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ArrivalEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.order).cmp(&(other.at, other.order))
    }
}

/// The discrete-event call simulator.
pub struct Session {
    cfg: SessionConfig,
    rng: StdRng,
    link: Link,
    receiver: Receiver,
    events: BinaryHeap<Reverse<(Timestamp, u64, EventKind)>>,
    arrivals: BinaryHeap<Reverse<ArrivalEntry>>,
    packets: Vec<SimPacket>,
    ctr: u64,

    // Sender state.
    rate: RateController,
    frames: FrameSource,
    audio: AudioSource,
    video_seq: u16,
    audio_seq: u16,
    rtx_seq: u16,
    video_ts_offset: u32,
    audio_ts_offset: u32,
    frame_id: u64,
    current_height: u32,
    current_fps: f64,
    sent_rtp_per_sec: HashMap<i64, u32>,
    rtx_map: HashMap<u16, RtxInfo>,
    control_schedule: Vec<ControlPacket>,
}

impl Session {
    /// Builds a session; call [`Session::run`] to execute it.
    pub fn new(cfg: SessionConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let link = Link::new(cfg.schedule.clone(), cfg.link, cfg.seed ^ 0xdead_beef);
        let control_schedule = control::dtls_handshake(&mut rng);
        let start_kbps = cfg.profile.start_bitrate_kbps;
        let rate = RateController::new(
            start_kbps,
            cfg.profile.min_bitrate_kbps,
            cfg.profile.max_bitrate_kbps,
        );
        let frames = FrameSource::new(cfg.seed ^ 0x1234, cfg.profile.frame_size_cv);
        let current_height = cfg.profile.rung_for(start_kbps).height;
        let current_fps = cfg.profile.fps_for(start_kbps);
        Session {
            rng,
            link,
            receiver: Receiver::with_seed(cfg.seed ^ 0x0dec_0de5),
            events: BinaryHeap::new(),
            arrivals: BinaryHeap::new(),
            packets: Vec::new(),
            ctr: 0,
            rate,
            frames,
            audio: AudioSource::new(),
            video_seq: 0,
            audio_seq: 0,
            rtx_seq: 0,
            video_ts_offset: 0,
            audio_ts_offset: 0,
            frame_id: 0,
            current_height,
            current_fps,
            sent_rtp_per_sec: HashMap::new(),
            rtx_map: HashMap::new(),
            control_schedule,
            cfg,
        }
    }

    fn push_event(&mut self, at: Timestamp, kind: EventKind) {
        self.ctr += 1;
        self.events.push(Reverse((at, self.ctr, kind)));
    }

    /// Sends one packet through the link; on delivery, records it and
    /// queues the receiver-side arrival.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        now: Timestamp,
        media: MediaKind,
        rtp: Option<RtpHeader>,
        payload_len: usize,
        frame_id: u64,
        frame_packets: u32,
        height: u32,
    ) {
        let ip_total = (IP_UDP_OVERHEAD + rtp.map_or(0, |_| RTP_OVERHEAD) + payload_len) as u16;
        if rtp.is_some() {
            *self.sent_rtp_per_sec.entry(now.second_index()).or_insert(0) += 1;
        }
        match self.link.send(now, ip_total as usize) {
            LinkVerdict::Delivered(arrival) => {
                self.packets.push(SimPacket {
                    send_ts: now,
                    arrival_ts: arrival,
                    ip_total_len: ip_total,
                    media,
                    rtp,
                });
                if let Some(h) = rtp {
                    self.ctr += 1;
                    self.arrivals.push(Reverse(ArrivalEntry {
                        at: arrival,
                        order: self.ctr,
                        pkt: ArrivedPacket {
                            arrival,
                            send: now,
                            media,
                            frame_id,
                            frame_packets,
                            height,
                            seq: h.sequence,
                            payload_len,
                        },
                    }));
                }
            }
            LinkVerdict::Dropped(_) => {}
        }
    }

    /// Delivers all receiver arrivals up to time `now`, handling NACKs.
    fn drain_arrivals(&mut self, now: Timestamp) {
        while let Some(Reverse(head)) = self.arrivals.peek() {
            if head.at > now {
                break;
            }
            let Some(Reverse(entry)) = self.arrivals.pop() else {
                break; // unreachable: peek above proved non-empty
            };
            let nacks = self.receiver.on_packet(entry.pkt);
            if self.cfg.profile.has_rtx && !nacks.is_empty() {
                // NACK travels back over the reverse path, then the sender
                // retransmits.
                let owd = self.cfg.schedule.at(entry.at).delay_ms + 5.0;
                let when = entry.at + Timestamp::from_micros((owd * 1000.0) as i64);
                for seq in nacks {
                    self.push_event(when.max(now), EventKind::Retransmit { seq });
                }
            }
        }
    }

    /// Runs the call to completion.
    pub fn run(mut self) -> SessionTrace {
        let duration = Timestamp::from_secs(i64::from(self.cfg.duration_secs));

        // Seed the event queue.
        for (i, cp) in self.control_schedule.clone().into_iter().enumerate() {
            self.push_event(
                Timestamp::from_millis(cp.at_ms as i64),
                EventKind::Control(i),
            );
        }
        let media_start = Timestamp::from_millis(
            self.control_schedule
                .last()
                .map_or(200, |c| c.at_ms as i64 + 50),
        );
        self.video_ts_offset = self.rng.gen();
        self.audio_ts_offset = self.rng.gen();
        self.push_event(media_start, EventKind::VideoFrame);
        self.push_event(media_start, EventKind::AudioPacket);
        if self.cfg.profile.has_rtx {
            self.push_event(
                media_start + Timestamp::from_millis(100),
                EventKind::RtxKeepalive,
            );
        }
        self.push_event(
            Timestamp::from_millis(control::STUN_INTERVAL_MS as i64),
            EventKind::StunKeepalive,
        );
        self.push_event(
            media_start + Timestamp::from_millis(500),
            EventKind::RtcpReport,
        );
        self.push_event(Timestamp::from_secs(1), EventKind::RateUpdate);

        while let Some(Reverse((t, _, kind))) = self.events.pop() {
            if t >= duration {
                break;
            }
            self.drain_arrivals(t);
            match kind {
                EventKind::VideoFrame => self.on_video_frame(t),
                EventKind::AudioPacket => self.on_audio(t),
                EventKind::RtxKeepalive => self.on_rtx_keepalive(t),
                EventKind::StunKeepalive => self.on_stun(t),
                EventKind::RtcpReport => self.on_rtcp(t),
                EventKind::Control(i) => self.on_control(t, i),
                EventKind::Retransmit { seq } => self.on_retransmit(t, seq),
                EventKind::RateUpdate => self.on_rate_update(t),
            }
        }
        // Let in-flight packets land.
        self.drain_arrivals(duration + Timestamp::from_secs(5));

        let mut packets = std::mem::take(&mut self.packets);
        packets.sort_by_key(|p| (p.arrival_ts, p.send_ts));
        let truth = self
            .receiver
            .ground_truth(i64::from(self.cfg.duration_secs));
        SessionTrace {
            vca: self.cfg.profile.vca,
            packets,
            truth,
            duration_secs: self.cfg.duration_secs,
        }
    }

    fn on_video_frame(&mut self, t: Timestamp) {
        let target = self.rate.target_kbps();
        let frame = self
            .frames
            .next_frame(target, self.current_fps, self.current_height);
        let policy = if self.rng.gen::<f64>() < self.cfg.profile.unequal_frag_prob {
            FragmentPolicy::Unequal
        } else {
            FragmentPolicy::Equal
        };
        let parts = packetize(
            frame.size,
            self.cfg.profile.max_payload,
            policy,
            &mut self.rng,
        );
        let rtp_ts = RtpClock::video()
            .ticks_for(t)
            .wrapping_add(self.video_ts_offset);
        let n = parts.len() as u32;
        let fid = self.frame_id;
        self.frame_id += 1;
        for (i, part) in parts.iter().enumerate() {
            let seq = self.video_seq;
            self.video_seq = self.video_seq.wrapping_add(1);
            let hdr = RtpHeader::basic(
                self.cfg.profile.payload_map.video,
                seq,
                rtp_ts,
                0x0000_0010,
                i + 1 == parts.len(),
            );
            self.rtx_map.insert(
                seq,
                RtxInfo {
                    payload_len: *part,
                    frame_id: fid,
                    frame_packets: n,
                    height: frame.height,
                    rtp_ts,
                    retransmitted: false,
                },
            );
            // Microburst: packets of a frame leave back-to-back.
            let at = t + Timestamp::from_micros(i as i64 * 250);
            self.transmit(at, MediaKind::Video, Some(hdr), *part, fid, n, frame.height);
        }
        // Cap the rtx map so a long call doesn't grow unbounded: old
        // sequence numbers can no longer be NACKed anyway.
        if self.rtx_map.len() > 4096 {
            let horizon = self.video_seq.wrapping_sub(2048);
            self.rtx_map
                .retain(|&s, _| vcaml_rtp::seq_distance(s, horizon) >= 0);
        }
        let next = t + Timestamp::from_micros((1e6 / self.current_fps) as i64);
        self.push_event(next, EventKind::VideoFrame);
    }

    fn on_audio(&mut self, t: Timestamp) {
        let payload = self.audio.next_payload(&mut self.rng);
        let seq = self.audio_seq;
        self.audio_seq = self.audio_seq.wrapping_add(1);
        let hdr = RtpHeader::basic(
            self.cfg.profile.payload_map.audio,
            seq,
            RtpClock::audio()
                .ticks_for(t)
                .wrapping_add(self.audio_ts_offset),
            0x0000_00a0,
            false,
        );
        self.transmit(t, MediaKind::Audio, Some(hdr), payload, u64::MAX, 1, 0);
        self.push_event(
            t + Timestamp::from_millis(audio::PACKET_INTERVAL_MS as i64),
            EventKind::AudioPacket,
        );
    }

    fn on_rtx_keepalive(&mut self, t: Timestamp) {
        let payload = usize::from(self.cfg.profile.keepalive_size) - IP_UDP_OVERHEAD - RTP_OVERHEAD;
        let seq = self.rtx_seq;
        self.rtx_seq = self.rtx_seq.wrapping_add(1);
        let pt = self
            .cfg
            .profile
            .payload_map
            .video_rtx
            .expect("rtx keepalive without rtx PT"); // lint: allow(no-unwrap-in-lib) -- path is gated on profile.has_rtx, which implies an rtx payload type
        let hdr = RtpHeader::basic(
            pt,
            seq,
            RtpClock::video()
                .ticks_for(t)
                .wrapping_add(self.video_ts_offset),
            0x0000_0111,
            false,
        );
        self.transmit(t, MediaKind::VideoRtx, Some(hdr), payload, u64::MAX, 1, 0);
        self.push_event(
            t + Timestamp::from_millis(self.cfg.profile.keepalive_interval_ms as i64),
            EventKind::RtxKeepalive,
        );
    }

    fn on_stun(&mut self, t: Timestamp) {
        let payload = control::stun_keepalive_payload(&mut self.rng);
        self.transmit(t, MediaKind::Control, None, payload, u64::MAX, 1, 0);
        self.push_event(
            t + Timestamp::from_millis(control::STUN_INTERVAL_MS as i64),
            EventKind::StunKeepalive,
        );
    }

    fn on_rtcp(&mut self, t: Timestamp) {
        // Compound SR (video + audio) — small control packet.
        let payload = self.rng.gen_range(56..140);
        self.transmit(t, MediaKind::Control, None, payload, u64::MAX, 1, 0);
        self.push_event(t + Timestamp::from_millis(1000), EventKind::RtcpReport);
    }

    fn on_control(&mut self, t: Timestamp, idx: usize) {
        let payload = self.control_schedule[idx].payload;
        self.transmit(t, MediaKind::Control, None, payload, u64::MAX, 1, 0);
    }

    fn on_retransmit(&mut self, t: Timestamp, seq: u16) {
        if !self.cfg.profile.has_rtx {
            return;
        }
        let Some(info) = self.rtx_map.get_mut(&seq) else {
            return;
        };
        if info.retransmitted {
            return;
        }
        info.retransmitted = true;
        let info = *info;
        let rtx_seq = self.rtx_seq;
        self.rtx_seq = self.rtx_seq.wrapping_add(1);
        let pt = self
            .cfg
            .profile
            .payload_map
            .video_rtx
            .expect("retransmit without rtx PT"); // lint: allow(no-unwrap-in-lib) -- path is gated on profile.has_rtx, which implies an rtx payload type
        let hdr = RtpHeader::basic(pt, rtx_seq, info.rtp_ts, 0x0000_0111, false);
        // RFC 4588: original sequence number prefixes the payload.
        self.transmit(
            t,
            MediaKind::VideoRtx,
            Some(hdr),
            info.payload_len + 2,
            info.frame_id,
            info.frame_packets,
            info.height,
        );
    }

    fn on_rate_update(&mut self, t: Timestamp) {
        let sec = t.second_index() - 1;
        let sent = self.sent_rtp_per_sec.get(&sec).copied().unwrap_or(0);
        let fb = self.receiver.feedback_for_second(sec, sent);
        let target = self.rate.update(fb);
        let rung = self.cfg.profile.rung_for(target);
        if rung.height != self.current_height {
            self.current_height = rung.height;
            self.frames.request_keyframe();
        }
        self.current_fps = self.cfg.profile.fps_for(target);
        self.push_event(t + Timestamp::from_secs(1), EventKind::RateUpdate);
    }
}

impl SessionTrace {
    /// Materializes the trace as captured packets with real wire bytes
    /// (IPv4 + UDP + RTP), suitable for pcap export or byte-level parsing.
    pub fn to_captured(&self) -> Vec<CapturedPacket> {
        let src = [203, 0, 113, 10];
        let dst = [192, 168, 1, 100];
        self.packets
            .iter()
            .map(|p| {
                let ip_payload = usize::from(p.ip_total_len) - 20;
                let udp_payload_len = ip_payload - 8;
                let mut udp_payload = vec![0u8; udp_payload_len];
                if let Some(h) = p.rtp {
                    h.emit(&mut udp_payload);
                } else if !udp_payload.is_empty() {
                    // Mark control packets with a DTLS-looking first byte
                    // so they never parse as RTP (version bits = 0).
                    udp_payload[0] = 0x16;
                }
                CapturedPacket {
                    ts: p.arrival_ts,
                    datagram: UdpDatagram {
                        src: std::net::IpAddr::from(src),
                        dst: std::net::IpAddr::from(dst),
                        src_port: 3478,
                        dst_port: 51820,
                        ip_total_len: p.ip_total_len,
                        payload: bytes::Bytes::from(udp_payload),
                    },
                }
            })
            .collect()
    }

    /// Mean ground-truth frame rate over the call.
    pub fn mean_fps(&self) -> f64 {
        if self.truth.is_empty() {
            return 0.0;
        }
        self.truth.iter().map(|t| t.fps).sum::<f64>() / self.truth.len() as f64
    }

    /// Mean ground-truth bitrate over the call, kbps.
    pub fn mean_bitrate_kbps(&self) -> f64 {
        if self.truth.is_empty() {
            return 0.0;
        }
        self.truth.iter().map(|t| t.bitrate_kbps).sum::<f64>() / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::VcaProfile;
    use vcaml_netem::SecondCondition;

    fn good_network() -> ConditionSchedule {
        ConditionSchedule::constant(SecondCondition {
            throughput_kbps: 5000.0,
            delay_ms: 20.0,
            jitter_ms: 1.0,
            loss_pct: 0.0,
        })
    }

    fn run(vca: VcaKind, sched: ConditionSchedule, secs: u32, seed: u64) -> SessionTrace {
        Session::new(SessionConfig {
            profile: VcaProfile::lab(vca),
            schedule: sched,
            duration_secs: secs,
            seed,
            link: LinkConfig::default(),
        })
        .run()
    }

    #[test]
    fn good_network_reaches_high_fps() {
        let trace = run(VcaKind::Teams, good_network(), 20, 1);
        // Skip warm-up seconds.
        let settled: Vec<f64> = trace.truth[5..].iter().map(|t| t.fps).collect();
        let mean = settled.iter().sum::<f64>() / settled.len() as f64;
        assert!(mean > 24.0, "settled fps {mean}");
    }

    #[test]
    fn bitrate_ramps_toward_cap_on_good_network() {
        let trace = run(VcaKind::Teams, good_network(), 25, 2);
        let late = &trace.truth[15..];
        let mean = late.iter().map(|t| t.bitrate_kbps).sum::<f64>() / late.len() as f64;
        assert!(mean > 2000.0, "late bitrate {mean}");
    }

    #[test]
    fn webex_bitrate_lower_than_teams() {
        let teams = run(VcaKind::Teams, good_network(), 20, 3);
        let webex = run(VcaKind::Webex, good_network(), 20, 3);
        assert!(webex.mean_bitrate_kbps() < teams.mean_bitrate_kbps());
        assert!(webex.mean_bitrate_kbps() < 1600.0);
    }

    #[test]
    fn packets_sorted_and_classified() {
        let trace = run(VcaKind::Meet, good_network(), 10, 4);
        assert!(!trace.packets.is_empty());
        assert!(trace
            .packets
            .windows(2)
            .all(|w| w[0].arrival_ts <= w[1].arrival_ts));
        let kinds: std::collections::HashSet<_> = trace.packets.iter().map(|p| p.media).collect();
        assert!(kinds.contains(&MediaKind::Video));
        assert!(kinds.contains(&MediaKind::Audio));
        assert!(kinds.contains(&MediaKind::Control));
        assert!(kinds.contains(&MediaKind::VideoRtx));
    }

    #[test]
    fn audio_sizes_within_envelope_video_larger() {
        let trace = run(VcaKind::Teams, good_network(), 15, 5);
        for p in &trace.packets {
            match p.media {
                MediaKind::Audio => {
                    assert!(
                        (89..=385).contains(&p.ip_total_len),
                        "audio {}",
                        p.ip_total_len
                    )
                }
                MediaKind::Video => {}
                _ => {}
            }
        }
        // 99% of Teams video packets should exceed 564 bytes on a good
        // network (paper Fig. 1).
        let video: Vec<u16> = trace
            .packets
            .iter()
            .filter(|p| p.media == MediaKind::Video)
            .map(|p| p.ip_total_len)
            .collect();
        let big = video.iter().filter(|&&s| s > 564).count();
        assert!(
            big as f64 / video.len() as f64 > 0.80,
            "only {}/{} video packets above 564B",
            big,
            video.len()
        );
    }

    #[test]
    fn keepalives_present_at_304() {
        let trace = run(VcaKind::Teams, good_network(), 10, 6);
        let ka = trace
            .packets
            .iter()
            .filter(|p| p.media == MediaKind::VideoRtx && p.ip_total_len == 304)
            .count();
        assert!(ka >= 10, "only {ka} keepalives");
    }

    #[test]
    fn loss_triggers_retransmissions() {
        let sched = ConditionSchedule::constant(SecondCondition {
            throughput_kbps: 4000.0,
            delay_ms: 25.0,
            jitter_ms: 1.0,
            loss_pct: 5.0,
        });
        let trace = run(VcaKind::Teams, sched, 15, 7);
        let rtx_data = trace
            .packets
            .iter()
            .filter(|p| p.media == MediaKind::VideoRtx && p.ip_total_len != 304)
            .count();
        assert!(
            rtx_data > 5,
            "only {rtx_data} retransmissions under 5% loss"
        );
    }

    #[test]
    fn congestion_reduces_bitrate() {
        let tight = ConditionSchedule::constant(SecondCondition {
            throughput_kbps: 500.0,
            delay_ms: 25.0,
            jitter_ms: 1.0,
            loss_pct: 0.0,
        });
        let trace = run(VcaKind::Teams, tight, 25, 8);
        let late = &trace.truth[15..];
        let mean = late.iter().map(|t| t.bitrate_kbps).sum::<f64>() / late.len() as f64;
        assert!(mean < 700.0, "bitrate {mean} despite 500 kbps bottleneck");
    }

    #[test]
    fn resolution_follows_bitrate() {
        let tight = ConditionSchedule::constant(SecondCondition {
            throughput_kbps: 300.0,
            delay_ms: 25.0,
            jitter_ms: 0.5,
            loss_pct: 0.0,
        });
        let low = run(VcaKind::Meet, tight, 20, 9);
        let high = run(VcaKind::Meet, good_network(), 20, 9);
        let h_low = low.truth[10..].iter().map(|t| t.height).max().unwrap();
        let h_high = high.truth[10..].iter().map(|t| t.height).max().unwrap();
        assert!(h_low < h_high, "low {h_low} vs high {h_high}");
    }

    #[test]
    fn truth_length_matches_duration() {
        let trace = run(VcaKind::Webex, good_network(), 12, 10);
        assert_eq!(trace.truth.len(), 12);
        assert_eq!(trace.duration_secs, 12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(VcaKind::Meet, good_network(), 8, 42);
        let b = run(VcaKind::Meet, good_network(), 8, 42);
        assert_eq!(a.packets, b.packets);
        let c = run(VcaKind::Meet, good_network(), 8, 43);
        assert_ne!(a.packets, c.packets);
    }

    #[test]
    fn captured_packets_parse_as_rtp() {
        let trace = run(VcaKind::Teams, good_network(), 6, 11);
        let captured = trace.to_captured();
        assert_eq!(captured.len(), trace.packets.len());
        for (cap, sim) in captured.iter().zip(&trace.packets) {
            assert_eq!(cap.size(), sim.ip_total_len);
            match sim.rtp {
                Some(h) => {
                    let parsed = RtpHeader::parse(&cap.datagram.payload).unwrap();
                    assert_eq!(parsed.payload_type, h.payload_type);
                    assert_eq!(parsed.sequence, h.sequence);
                    assert_eq!(parsed.timestamp, h.timestamp);
                    assert_eq!(parsed.marker, h.marker);
                }
                None => {
                    assert!(RtpHeader::parse(&cap.datagram.payload).is_err());
                }
            }
        }
    }

    #[test]
    fn intra_frame_sizes_nearly_equal_for_h264_vcas() {
        let trace = run(VcaKind::Teams, good_network(), 10, 12);
        // Group video packets by RTP timestamp = frame.
        let mut by_ts: HashMap<u32, Vec<u16>> = HashMap::new();
        for p in &trace.packets {
            if p.media == MediaKind::Video {
                by_ts
                    .entry(p.rtp.unwrap().timestamp)
                    .or_default()
                    .push(p.ip_total_len);
            }
        }
        let mut bad = 0;
        let mut multi = 0;
        for sizes in by_ts.values() {
            if sizes.len() > 1 {
                multi += 1;
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                if max - min > 1 {
                    bad += 1;
                }
            }
        }
        assert!(multi > 20);
        assert_eq!(bad, 0, "{bad}/{multi} frames with intra-frame spread > 1");
    }

    #[test]
    fn meet_has_unequal_frames() {
        let trace = run(VcaKind::Meet, good_network(), 30, 13);
        let mut by_ts: HashMap<u32, Vec<u16>> = HashMap::new();
        for p in &trace.packets {
            if p.media == MediaKind::Video {
                by_ts
                    .entry(p.rtp.unwrap().timestamp)
                    .or_default()
                    .push(p.ip_total_len);
            }
        }
        let mut bad = 0;
        let mut multi = 0;
        for sizes in by_ts.values() {
            if sizes.len() > 1 {
                multi += 1;
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                if max - min > 2 {
                    bad += 1;
                }
            }
        }
        let frac = f64::from(bad) / f64::from(multi.max(1));
        assert!(
            frac > 0.01 && frac < 0.15,
            "unequal fraction {frac} ({bad}/{multi})"
        );
    }
}
