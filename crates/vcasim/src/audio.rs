//! Opus-like audio source: one packet every 20 ms with sizes inside the
//! paper's observed [89, 385]-byte envelope (IP total length, §3.1).

use rand::rngs::StdRng;
use rand::Rng;

/// Audio packet interval (Opus default frame duration).
pub const PACKET_INTERVAL_MS: u64 = 20;

/// IP+UDP+RTP overhead assumed when converting the paper's IP total-length
/// envelope into payload sizes (20 + 8 + 12).
const HEADER_OVERHEAD: usize = 40;

/// Paper-observed IP total-length bounds for audio packets.
pub const MIN_TOTAL: usize = 89;
/// Upper bound of the audio packet-size envelope.
pub const MAX_TOTAL: usize = 385;

/// Stateful audio payload-size generator: a slowly-varying Opus VBR rate
/// with occasional comfort-noise (DTX) small packets.
#[derive(Debug)]
pub struct AudioSource {
    /// Current VBR level in payload bytes.
    level: f64,
}

impl AudioSource {
    /// Creates a source at a typical speech level.
    pub fn new() -> Self {
        AudioSource { level: 120.0 }
    }

    /// Next RTP payload size in bytes.
    pub fn next_payload(&mut self, rng: &mut StdRng) -> usize {
        // Random-walk the VBR level inside the envelope.
        self.level = (self.level + rng.gen_range(-8.0..8.0)).clamp(
            (MIN_TOTAL - HEADER_OVERHEAD) as f64 + 6.0,
            (MAX_TOTAL - HEADER_OVERHEAD) as f64,
        );
        if rng.gen::<f64>() < 0.05 {
            // DTX / comfort noise: minimum-size packet.
            return MIN_TOTAL - HEADER_OVERHEAD;
        }
        let jittered = self.level + rng.gen_range(-12.0..12.0);
        (jittered as usize).clamp(MIN_TOTAL - HEADER_OVERHEAD, MAX_TOTAL - HEADER_OVERHEAD)
    }
}

impl Default for AudioSource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_stay_in_paper_envelope() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut src = AudioSource::new();
        for _ in 0..5000 {
            let total = src.next_payload(&mut rng) + HEADER_OVERHEAD;
            assert!((MIN_TOTAL..=MAX_TOTAL).contains(&total), "total {total}");
        }
    }

    #[test]
    fn sizes_vary() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut src = AudioSource::new();
        let sizes: Vec<usize> = (0..200).map(|_| src.next_payload(&mut rng)).collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct sizes",
            distinct.len()
        );
    }

    #[test]
    fn dtx_packets_hit_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut src = AudioSource::new();
        let floor = MIN_TOTAL - HEADER_OVERHEAD;
        let hits = (0..2000)
            .filter(|_| src.next_payload(&mut rng) == floor)
            .count();
        assert!(hits > 30, "only {hits} DTX packets");
    }
}
