//! Video encoder model: per-frame encoded sizes under variable-bitrate
//! encoding with keyframes.
//!
//! Frame size tracks `bitrate / fps` with an AR(1) content-activity
//! process, so consecutive frames differ in size — the property that makes
//! inter-frame packet boundaries detectable (paper §3.2.1: "due to dynamic
//! nature of the underlying video content along with variable bitrate
//! encoding ... consecutive frames exhibit different sizes").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One encoded video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoFrame {
    /// Encoded size in bytes.
    pub size: usize,
    /// Whether this is a keyframe (IDR / VP8 key frame).
    pub keyframe: bool,
    /// Frame height at encode time.
    pub height: u32,
}

/// Stateful frame-size generator.
#[derive(Debug)]
pub struct FrameSource {
    rng: StdRng,
    /// AR(1) content-activity state, mean 1.0.
    activity: f64,
    /// AR(1) pole: correlation between consecutive frames.
    rho: f64,
    /// Innovation scale, derived from the profile's coefficient of
    /// variation.
    sigma: f64,
    frames_since_key: u32,
    /// Mean keyframe interval in frames.
    key_interval: u32,
    /// Size multiplier applied to keyframes.
    key_gain: f64,
    force_key: bool,
}

impl FrameSource {
    /// Creates a source with the given VBR coefficient of variation.
    pub fn new(seed: u64, frame_size_cv: f64) -> Self {
        let rho: f64 = 0.7;
        FrameSource {
            rng: StdRng::seed_from_u64(seed),
            activity: 1.0,
            rho,
            // Stationary stdev of AR(1) is sigma/sqrt(1-rho^2); invert.
            sigma: frame_size_cv * (1.0 - rho * rho).sqrt(),
            frames_since_key: 0,
            key_interval: 300,
            key_gain: 4.0,
            force_key: true, // first frame is always a keyframe
        }
    }

    /// Requests a keyframe (e.g. on resolution switch or recovery).
    pub fn request_keyframe(&mut self) {
        self.force_key = true;
    }

    /// Produces the next frame for a target bitrate and frame rate.
    pub fn next_frame(&mut self, target_kbps: f64, fps: f64, height: u32) -> VideoFrame {
        assert!(fps > 0.0 && target_kbps > 0.0);
        let mean_bytes = target_kbps * 1000.0 / 8.0 / fps;

        // Evolve content activity.
        let g = gaussian(&mut self.rng);
        self.activity = 1.0 + self.rho * (self.activity - 1.0) + self.sigma * g;
        self.activity = self.activity.clamp(0.25, 3.0);

        let keyframe = self.force_key
            || (self.frames_since_key >= self.key_interval && self.rng.gen::<f64>() < 0.2);
        self.force_key = false;
        if keyframe {
            self.frames_since_key = 0;
        } else {
            self.frames_since_key += 1;
        }

        let gain = if keyframe { self.key_gain } else { 1.0 };
        let size = (mean_bytes * self.activity * gain).max(120.0) as usize;
        VideoFrame {
            size,
            keyframe,
            height,
        }
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_frame_is_keyframe() {
        let mut src = FrameSource::new(1, 0.25);
        assert!(src.next_frame(1000.0, 30.0, 360).keyframe);
        assert!(!src.next_frame(1000.0, 30.0, 360).keyframe);
    }

    #[test]
    fn mean_size_tracks_budget() {
        let mut src = FrameSource::new(2, 0.25);
        src.next_frame(1000.0, 30.0, 360); // discard keyframe
        let n = 5000;
        let total: usize = (0..n).map(|_| src.next_frame(1000.0, 30.0, 360).size).sum();
        let mean = total as f64 / n as f64;
        let budget = 1000.0 * 1000.0 / 8.0 / 30.0; // ≈ 4167 bytes
                                                   // Keyframes inside the window inflate the mean a bit; allow 25%.
        assert!(
            (mean - budget).abs() / budget < 0.25,
            "mean {mean} vs {budget}"
        );
    }

    #[test]
    fn consecutive_frames_differ() {
        let mut src = FrameSource::new(3, 0.25);
        let sizes: Vec<usize> = (0..200)
            .map(|_| src.next_frame(800.0, 30.0, 270).size)
            .collect();
        let same = sizes.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(same < 5, "{same} identical consecutive frames");
    }

    #[test]
    fn keyframes_are_larger() {
        let mut src = FrameSource::new(4, 0.2);
        let key = src.next_frame(1000.0, 30.0, 360);
        let mut deltas = Vec::new();
        for _ in 0..50 {
            deltas.push(src.next_frame(1000.0, 30.0, 360).size);
        }
        let mean_delta = deltas.iter().sum::<usize>() / deltas.len();
        assert!(
            key.size > mean_delta * 2,
            "key {} vs delta mean {mean_delta}",
            key.size
        );
    }

    #[test]
    fn request_keyframe_honoured() {
        let mut src = FrameSource::new(5, 0.2);
        src.next_frame(500.0, 30.0, 180);
        src.request_keyframe();
        assert!(src.next_frame(500.0, 30.0, 180).keyframe);
    }

    #[test]
    fn periodic_keyframes_appear() {
        let mut src = FrameSource::new(6, 0.2);
        let keys = (0..2000)
            .filter(|_| src.next_frame(700.0, 30.0, 270).keyframe)
            .count();
        assert!(keys >= 3, "only {keys} keyframes in 2000 frames");
    }

    #[test]
    fn floor_respected_at_tiny_bitrate() {
        let mut src = FrameSource::new(7, 0.3);
        for _ in 0..100 {
            assert!(src.next_frame(8.0, 30.0, 90).size >= 120);
        }
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut s = FrameSource::new(seed, 0.25);
            (0..100)
                .map(|_| s.next_frame(900.0, 30.0, 360).size)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
