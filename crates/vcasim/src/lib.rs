//! # vcaml-vcasim — WebRTC-style VCA session simulator
//!
//! Stands in for live Google Meet / Microsoft Teams / Cisco Webex calls.
//! The simulator reproduces, at packet granularity, every traffic-shaping
//! mechanism the paper's inference methods key on:
//!
//! * frames are encoded and transmitted **immediately** (microbursts);
//! * frames are fragmented into **equal-sized packets** (intra-frame packet
//!   size difference ≤ 1 byte) because FEC is most efficient that way —
//!   with a configurable fraction of **unequal** fragmentation reproducing
//!   the Meet/VP8 anomaly of §5.2.1;
//! * **VBR encoding** makes consecutive frames (and hence their packets)
//!   differ in size;
//! * a separate Opus **audio stream** of small packets, a **retransmission
//!   stream** answering NACKs plus 304-byte **keepalives**, and **DTLS**
//!   handshake packets at call start;
//! * a GCC-like **rate controller** moving the encoder along each VCA's
//!   resolution/frame-rate ladder;
//! * a receiver with a **jitter buffer + decoder** whose per-second stats
//!   define ground truth the same way `webrtc-internals` does (frame jitter
//!   measured over *decoded* frames, §5.1.4).
//!
//! The output of [`Session::run`] is a [`SessionTrace`]: the packet
//! sequence a passive monitor at the receiver's access link would capture,
//! plus per-second ground-truth QoE.

pub mod audio;
pub mod codec;
pub mod control;
pub mod modes;
pub mod packetizer;
pub mod profiles;
pub mod rate;
pub mod receiver;
pub mod session;

pub use codec::{FrameSource, VideoFrame};
pub use modes::{dtx_segment, merge_multiparty, video_off};
pub use packetizer::{packetize, FragmentPolicy};
pub use profiles::{LadderRung, VcaProfile};
pub use rate::RateController;
pub use receiver::{Receiver, SecondTruth};
pub use session::{Session, SessionConfig, SessionTrace, SimPacket};
