//! Frame packetization.
//!
//! The default policy splits a frame into equal-sized RTP payloads
//! (difference ≤ 1 byte), mirroring the FEC-friendly fragmentation the
//! paper identifies (§3.2.1, citing RFC 6184 / RFC 5109). The `Unequal`
//! policy reproduces the Meet/VP8 behaviour where intra-frame packet sizes
//! spread by tens-to-hundreds of bytes, which breaks the IP/UDP Heuristic
//! (§5.2.1).

use rand::rngs::StdRng;
use rand::Rng;

/// How a frame is split into packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentPolicy {
    /// Equal split: payload sizes differ by at most one byte.
    Equal,
    /// Unequal split: payload sizes vary substantially within the frame.
    Unequal,
}

/// Splits `frame_size` payload bytes into per-packet payload sizes, none
/// exceeding `max_payload`.
///
/// # Panics
/// Panics if `frame_size` is zero or `max_payload` is zero.
pub fn packetize(
    frame_size: usize,
    max_payload: usize,
    policy: FragmentPolicy,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(frame_size > 0, "empty frame");
    assert!(max_payload > 0, "zero max payload");
    let n = frame_size.div_ceil(max_payload);
    match policy {
        FragmentPolicy::Equal => {
            let base = frame_size / n;
            let rem = frame_size % n;
            // `rem` packets carry one extra byte: sizes differ by ≤ 1.
            (0..n).map(|i| base + usize::from(i < rem)).collect()
        }
        FragmentPolicy::Unequal => {
            if n == 1 {
                // Split a single-packet frame in two uneven pieces so the
                // intra-frame spread exists even for small frames.
                if frame_size >= 160 {
                    let first = rng.gen_range(frame_size / 2..frame_size - 40);
                    return vec![first, frame_size - first];
                }
                return vec![frame_size];
            }
            // Start from the equal split, then move a random amount across
            // ONE packet boundary: VP8 partition boundaries typically leave
            // a single odd-sized packet per affected frame, so an unequal
            // frame splits into about two heuristic frames (paper Fig. 4:
            // ~0.7 splits per window for Meet).
            let mut sizes: Vec<usize> = {
                let base = frame_size / n;
                let rem = frame_size % n;
                (0..n).map(|i| base + usize::from(i < rem)).collect()
            };
            let i = rng.gen_range(0..n - 1);
            let max_shift = sizes[i].saturating_sub(60).min(max_payload - sizes[i + 1]);
            if max_shift >= 8 {
                let shift = rng.gen_range(8..=max_shift.min(400));
                sizes[i] -= shift;
                sizes[i + 1] += shift;
            }
            sizes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn equal_split_within_one_byte() {
        let mut r = rng();
        for size in [1usize, 100, 1160, 1161, 3000, 9999, 20000] {
            let parts = packetize(size, 1160, FragmentPolicy::Equal, &mut r);
            assert_eq!(parts.iter().sum::<usize>(), size);
            let min = *parts.iter().min().unwrap();
            let max = *parts.iter().max().unwrap();
            assert!(max - min <= 1, "size {size}: spread {}", max - min);
            assert!(max <= 1160);
        }
    }

    #[test]
    fn equal_split_packet_count_minimal() {
        let mut r = rng();
        assert_eq!(
            packetize(1160, 1160, FragmentPolicy::Equal, &mut r).len(),
            1
        );
        assert_eq!(
            packetize(1161, 1160, FragmentPolicy::Equal, &mut r).len(),
            2
        );
        assert_eq!(
            packetize(2320, 1160, FragmentPolicy::Equal, &mut r).len(),
            2
        );
        assert_eq!(
            packetize(2321, 1160, FragmentPolicy::Equal, &mut r).len(),
            3
        );
    }

    #[test]
    fn unequal_split_preserves_total_and_cap() {
        let mut r = rng();
        for size in [500usize, 2000, 4000, 12000] {
            let parts = packetize(size, 1160, FragmentPolicy::Unequal, &mut r);
            assert_eq!(parts.iter().sum::<usize>(), size, "size {size}");
            assert!(parts.iter().all(|&p| p > 0 && p <= 1160));
        }
    }

    #[test]
    fn unequal_split_actually_spreads() {
        let mut r = rng();
        let mut spread_seen = 0;
        for _ in 0..50 {
            let parts = packetize(3000, 1160, FragmentPolicy::Unequal, &mut r);
            let min = *parts.iter().min().unwrap();
            let max = *parts.iter().max().unwrap();
            if max - min > 2 {
                spread_seen += 1;
            }
        }
        assert!(spread_seen > 40, "only {spread_seen}/50 frames spread");
    }

    #[test]
    fn unequal_single_packet_frame_splits_when_large() {
        let mut r = rng();
        let parts = packetize(800, 1160, FragmentPolicy::Unequal, &mut r);
        assert_eq!(parts.iter().sum::<usize>(), 800);
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn unequal_tiny_frame_stays_single() {
        let mut r = rng();
        assert_eq!(
            packetize(100, 1160, FragmentPolicy::Unequal, &mut r),
            vec![100]
        );
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn zero_frame_rejected() {
        packetize(0, 1160, FragmentPolicy::Equal, &mut rng());
    }
}
