//! GCC-like sender rate control.
//!
//! A simplified Google-Congestion-Control loop updated once per second
//! from receiver feedback: multiplicative increase while loss is low,
//! hold in a dead zone, multiplicative decrease proportional to loss above
//! ~2%, plus a delay-based backoff when the one-way delay trend indicates
//! queue build-up. This is the mechanism that couples network conditions
//! to the QoE metrics the paper estimates.

use serde::{Deserialize, Serialize};

/// Receiver feedback for one update interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feedback {
    /// Fraction of packets lost in the interval, 0–1.
    pub loss_fraction: f64,
    /// Mean one-way delay observed in the interval, milliseconds.
    pub mean_owd_ms: f64,
    /// Receive rate in kbps (acknowledged throughput).
    pub recv_rate_kbps: f64,
}

/// Stateful rate controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateController {
    target_kbps: f64,
    min_kbps: f64,
    max_kbps: f64,
    /// Baseline one-way delay: exponential minimum tracker.
    base_owd_ms: Option<f64>,
}

impl RateController {
    /// Creates a controller with a starting rate and bounds.
    pub fn new(start_kbps: f64, min_kbps: f64, max_kbps: f64) -> Self {
        assert!(min_kbps > 0.0 && min_kbps <= start_kbps && start_kbps <= max_kbps);
        RateController {
            target_kbps: start_kbps,
            min_kbps,
            max_kbps,
            base_owd_ms: None,
        }
    }

    /// Current target bitrate in kbps.
    pub fn target_kbps(&self) -> f64 {
        self.target_kbps
    }

    /// Applies one interval of feedback and returns the new target.
    pub fn update(&mut self, fb: Feedback) -> f64 {
        // Track the baseline delay (slowly forgetting so route changes
        // don't pin it forever).
        let base = match self.base_owd_ms {
            None => fb.mean_owd_ms,
            Some(b) => (b * 1.02)
                .min(fb.mean_owd_ms.max(b * 0.98))
                .min(fb.mean_owd_ms)
                .max(
                    // never below the observed minimum this round
                    b.min(fb.mean_owd_ms),
                ),
        };
        self.base_owd_ms = Some(base);
        let queued_ms = (fb.mean_owd_ms - base).max(0.0);

        // Loss-based control (GCC thresholds: 2% / 10%).
        if fb.loss_fraction > 0.10 {
            self.target_kbps *= 1.0 - 0.5 * fb.loss_fraction;
            // REMB-style: never ride far above what actually arrived.
            if fb.recv_rate_kbps > 0.0 {
                self.target_kbps = self.target_kbps.min(fb.recv_rate_kbps * 0.95);
            }
        } else if fb.loss_fraction < 0.02 {
            self.target_kbps *= 1.08;
        }
        // Delay-based backoff: sustained queueing over 50 ms.
        if queued_ms > 50.0 {
            self.target_kbps *= 0.85;
            // Don't ride above what the network delivered.
            if fb.recv_rate_kbps > 0.0 {
                self.target_kbps = self.target_kbps.min(fb.recv_rate_kbps * 0.95);
            }
        }
        self.target_kbps = self.target_kbps.clamp(self.min_kbps, self.max_kbps);
        self.target_kbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(rate: f64) -> Feedback {
        Feedback {
            loss_fraction: 0.0,
            mean_owd_ms: 30.0,
            recv_rate_kbps: rate,
        }
    }

    #[test]
    fn ramps_up_without_loss() {
        let mut rc = RateController::new(500.0, 100.0, 4000.0);
        for _ in 0..30 {
            rc.update(clean(rc.target_kbps()));
        }
        assert!(
            (rc.target_kbps() - 4000.0).abs() < 1e-6,
            "rate {}",
            rc.target_kbps()
        );
    }

    #[test]
    fn heavy_loss_backs_off() {
        let mut rc = RateController::new(2000.0, 100.0, 4000.0);
        rc.update(Feedback {
            loss_fraction: 0.2,
            mean_owd_ms: 30.0,
            recv_rate_kbps: 1500.0,
        });
        assert!(rc.target_kbps() < 2000.0 * 0.95);
    }

    #[test]
    fn moderate_loss_holds() {
        let mut rc = RateController::new(2000.0, 100.0, 4000.0);
        rc.update(Feedback {
            loss_fraction: 0.05,
            mean_owd_ms: 30.0,
            recv_rate_kbps: 1900.0,
        });
        assert!((rc.target_kbps() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn queue_buildup_backs_off() {
        let mut rc = RateController::new(2000.0, 100.0, 4000.0);
        rc.update(clean(2000.0)); // establish 30 ms baseline (and +8% growth)
        let before = rc.target_kbps();
        rc.update(Feedback {
            loss_fraction: 0.0,
            mean_owd_ms: 160.0,
            recv_rate_kbps: 1000.0,
        });
        // Increase 8% then ×0.85 and capped at 95% of recv rate.
        assert!(rc.target_kbps() <= 1000.0 * 0.95 + 1e-9);
        assert!(rc.target_kbps() < before);
    }

    #[test]
    fn respects_bounds() {
        let mut rc = RateController::new(150.0, 100.0, 800.0);
        for _ in 0..50 {
            rc.update(Feedback {
                loss_fraction: 0.5,
                mean_owd_ms: 30.0,
                recv_rate_kbps: 50.0,
            });
        }
        assert!((rc.target_kbps() - 100.0).abs() < 1e-9);
        for _ in 0..50 {
            rc.update(clean(rc.target_kbps()));
        }
        assert!((rc.target_kbps() - 800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_bounds_rejected() {
        let _ = RateController::new(100.0, 200.0, 4000.0);
    }
}
