//! The receiving client: frame reassembly, jitter buffer, decoder, and the
//! `webrtc-internals`-style per-second ground-truth statistics.
//!
//! Two paper-critical behaviours live here:
//!
//! 1. **Frame jitter is measured over decoded frames** — after the jitter
//!    buffer has smoothed arrivals and added its own variable delay. This
//!    is why the paper's §5.1.4 finds all network-side methods
//!    overestimate "true" (network) jitter relative to the WebRTC ground
//!    truth.
//! 2. **NACK generation** on sequence gaps feeds the retransmission
//!    stream, which under loss reorders packets and degrades the IP/UDP
//!    methods (§5.4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vcaml_netpkt::Timestamp;
use vcaml_rtp::MediaKind;

/// Per-packet codec packetization metadata (payload descriptors, frame
/// headers) included in the RTP payload but not counted by the
/// application's media bitrate stat. This is what makes network-side
/// bitrate estimates systematically overestimate (paper §5.1.3: "neither
/// of these heuristics considers any application-layer overheads").
pub const MEDIA_OVERHEAD_BYTES: usize = 30;

/// A packet as it arrives at the receiving client (post-network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivedPacket {
    /// Arrival time.
    pub arrival: Timestamp,
    /// Original send time (used for one-way-delay feedback).
    pub send: Timestamp,
    /// Media classification (from the RTP payload type).
    pub media: MediaKind,
    /// Video frame id this packet belongs to (dense, from 0).
    pub frame_id: u64,
    /// Number of packets the frame was fragmented into.
    pub frame_packets: u32,
    /// Frame height at encode time.
    pub height: u32,
    /// RTP sequence number on its stream.
    pub seq: u16,
    /// RTP payload bytes carried.
    pub payload_len: usize,
}

/// Per-second ground truth, the analogue of a `webrtc-internals` log row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecondTruth {
    /// Wall-clock second index from call start.
    pub second: i64,
    /// Received video bitrate in kbps (RTP payload bits per second).
    pub bitrate_kbps: f64,
    /// Frames decoded in this second.
    pub fps: f64,
    /// Standard deviation of inter-decoded-frame gaps, milliseconds.
    pub frame_jitter_ms: f64,
    /// Dominant decoded frame height.
    pub height: u32,
}

#[derive(Debug)]
struct FrameAsm {
    needed: u32,
    got: u32,
    first_arrival: Timestamp,
    last_arrival: Timestamp,
    height: u32,
    payload_bytes: usize,
}

/// Decoded-frame event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Time the frame left the jitter buffer.
    pub decode_ts: Timestamp,
    /// Frame id.
    pub frame_id: u64,
    /// Frame height.
    pub height: u32,
}

/// Receiver state machine.
#[derive(Debug)]
pub struct Receiver {
    frames: HashMap<u64, FrameAsm>,
    next_decode: u64,
    last_decode_out: Timestamp,
    /// EWMA of frame-arrival jitter, milliseconds.
    ewma_jitter_ms: f64,
    last_complete_arrival: Option<Timestamp>,
    decoded: Vec<DecodedFrame>,
    /// Video payload bytes by arrival second.
    bytes_per_sec: HashMap<i64, usize>,
    /// Expected next sequence number on the video stream (NACK tracking).
    expected_video_seq: Option<u16>,
    /// Packets counted per second for feedback.
    arrivals_per_sec: HashMap<i64, u32>,
    owd_sum_per_sec: HashMap<i64, f64>,
    /// How long an undecodable frame stalls the pipeline before being
    /// skipped, microseconds.
    abandon_us: i64,
    abandoned: u64,
    /// Randomness for application-level decode delay variability.
    rng: StdRng,
}

impl Receiver {
    /// Creates a receiver with the default 150 ms frame-abandon timeout
    /// (roughly what WebRTC's jitter buffer waits for NACK recovery before
    /// skipping ahead).
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates a receiver with an explicit seed for its decode-delay
    /// variability model.
    pub fn with_seed(seed: u64) -> Self {
        Receiver {
            frames: HashMap::new(),
            next_decode: 0,
            last_decode_out: Timestamp::ZERO,
            ewma_jitter_ms: 5.0,
            last_complete_arrival: None,
            decoded: Vec::new(),
            bytes_per_sec: HashMap::new(),
            expected_video_seq: None,
            arrivals_per_sec: HashMap::new(),
            owd_sum_per_sec: HashMap::new(),
            abandon_us: 150_000,
            abandoned: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xdec0de),
        }
    }

    /// Application-level delay variability added on top of the jitter
    /// buffer: decode/render scheduling noise plus rare CPU stalls. This
    /// is what makes the WebRTC-reported frame jitter larger than (and
    /// partly uncorrelated with) network-side frame jitter — the effect
    /// the paper discusses in §5.1.4.
    fn decode_delay_noise(&mut self) -> Timestamp {
        let g: f64 = {
            let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = self.rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let mut ms = (10.0 + 12.0 * g).max(0.0);
        if self.rng.gen::<f64>() < 0.02 {
            ms += self.rng.gen_range(50.0..150.0);
        }
        Timestamp::from_micros((ms * 1000.0) as i64)
    }

    /// Current adaptive jitter-buffer delay.
    fn buffer_delay(&self) -> Timestamp {
        let ms = (10.0 + 2.5 * self.ewma_jitter_ms).clamp(10.0, 250.0);
        Timestamp::from_micros((ms * 1000.0) as i64)
    }

    /// Handles one arriving packet. Returns sequence numbers to NACK (new
    /// gaps detected on the video stream).
    pub fn on_packet(&mut self, pkt: ArrivedPacket) -> Vec<u16> {
        let sec = pkt.arrival.second_index();
        *self.arrivals_per_sec.entry(sec).or_insert(0) += 1;
        *self.owd_sum_per_sec.entry(sec).or_insert(0.0) += (pkt.arrival - pkt.send).as_millis_f64();

        let mut nacks = Vec::new();
        match pkt.media {
            MediaKind::Video => {
                // Gap detection for NACK.
                if let Some(exp) = self.expected_video_seq {
                    let d = vcaml_rtp::seq_distance(pkt.seq, exp);
                    if d > 0 && d <= 64 {
                        let mut s = exp;
                        while s != pkt.seq {
                            nacks.push(s);
                            s = s.wrapping_add(1);
                        }
                    }
                    if d >= 0 {
                        self.expected_video_seq = Some(pkt.seq.wrapping_add(1));
                    }
                } else {
                    self.expected_video_seq = Some(pkt.seq.wrapping_add(1));
                }
                *self.bytes_per_sec.entry(sec).or_insert(0) +=
                    pkt.payload_len.saturating_sub(MEDIA_OVERHEAD_BYTES);
                self.ingest_video(pkt);
            }
            MediaKind::VideoRtx => {
                // A recovered packet completes its frame; keepalives have
                // frame_id == u64::MAX and are ignored here.
                if pkt.frame_id != u64::MAX {
                    *self.bytes_per_sec.entry(sec).or_insert(0) +=
                        pkt.payload_len.saturating_sub(MEDIA_OVERHEAD_BYTES);
                    self.ingest_video(pkt);
                }
            }
            MediaKind::Audio | MediaKind::Control => {}
        }
        self.drain_decodable(pkt.arrival);
        nacks
    }

    fn ingest_video(&mut self, pkt: ArrivedPacket) {
        if pkt.frame_id < self.next_decode {
            return; // frame already decoded or abandoned
        }
        let asm = self.frames.entry(pkt.frame_id).or_insert(FrameAsm {
            needed: pkt.frame_packets,
            got: 0,
            first_arrival: pkt.arrival,
            last_arrival: pkt.arrival,
            height: pkt.height,
            payload_bytes: 0,
        });
        asm.got += 1;
        asm.payload_bytes += pkt.payload_len;
        asm.last_arrival = asm.last_arrival.max(pkt.arrival);
        asm.first_arrival = asm.first_arrival.min(pkt.arrival);
    }

    /// Decodes all frames that are complete and in order; abandons frames
    /// stuck past the timeout.
    fn drain_decodable(&mut self, now: Timestamp) {
        loop {
            let id = self.next_decode;
            let Some(asm) = self.frames.get(&id) else {
                // Frame not seen at all: abandon once later frames prove
                // the stream has moved on.
                let later_complete = self
                    .frames
                    .iter()
                    .any(|(&fid, a)| fid > id && a.got >= a.needed);
                if later_complete && now.as_micros() > self.abandon_us {
                    // Only abandon if we've waited long enough since the
                    // earliest later frame arrived. (`later_complete`
                    // guarantees at least one later frame exists.)
                    let earliest_later = self
                        .frames
                        .iter()
                        .filter(|(&fid, _)| fid > id)
                        .map(|(_, a)| a.first_arrival)
                        .min();
                    if earliest_later.is_some_and(|t| (now - t).as_micros() > self.abandon_us) {
                        self.next_decode += 1;
                        self.abandoned += 1;
                        continue;
                    }
                }
                break;
            };
            if asm.got >= asm.needed {
                // Complete: run it through the jitter buffer.
                let complete = asm.last_arrival;
                let height = asm.height;
                if let Some(prev) = self.last_complete_arrival {
                    let gap = (complete - prev).as_millis_f64().abs();
                    // Deviation from a nominal 33 ms frame interval.
                    let dev = (gap - 33.3).abs();
                    self.ewma_jitter_ms = 0.9 * self.ewma_jitter_ms + 0.1 * dev;
                }
                self.last_complete_arrival = Some(complete);
                let noise = self.decode_delay_noise();
                let out = (complete + self.buffer_delay() + noise).max(self.last_decode_out);
                self.last_decode_out = out;
                self.decoded.push(DecodedFrame {
                    decode_ts: out,
                    frame_id: id,
                    height,
                });
                self.frames.remove(&id);
                self.next_decode += 1;
            } else if (now - asm.first_arrival).as_micros() > self.abandon_us {
                self.frames.remove(&id);
                self.next_decode += 1;
                self.abandoned += 1;
            } else {
                break;
            }
        }
    }

    /// Per-second feedback for the rate controller.
    pub fn feedback_for_second(&self, sec: i64, sent_packets: u32) -> crate::rate::Feedback {
        let got = self.arrivals_per_sec.get(&sec).copied().unwrap_or(0);
        let loss = if sent_packets > 0 {
            1.0 - f64::from(got.min(sent_packets)) / f64::from(sent_packets)
        } else {
            0.0
        };
        let owd = if got > 0 {
            self.owd_sum_per_sec.get(&sec).copied().unwrap_or(0.0) / f64::from(got)
        } else {
            0.0
        };
        let bytes = self.bytes_per_sec.get(&sec).copied().unwrap_or(0);
        crate::rate::Feedback {
            loss_fraction: loss,
            mean_owd_ms: owd,
            recv_rate_kbps: bytes as f64 * 8.0 / 1000.0,
        }
    }

    /// Frames the decoder skipped.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// All decode events so far (ordered by decode time).
    pub fn decoded_frames(&self) -> &[DecodedFrame] {
        &self.decoded
    }

    /// Finalizes the call and produces per-second ground truth covering
    /// seconds `0..duration_secs`.
    pub fn ground_truth(&mut self, duration_secs: i64) -> Vec<SecondTruth> {
        // Flush anything still waiting.
        self.drain_decodable(Timestamp::from_secs(duration_secs) + Timestamp::from_secs(10));
        let mut decode_by_sec: HashMap<i64, Vec<DecodedFrame>> = HashMap::new();
        for d in &self.decoded {
            decode_by_sec
                .entry(d.decode_ts.second_index())
                .or_default()
                .push(*d);
        }
        let mut out = Vec::with_capacity(duration_secs as usize);
        for sec in 0..duration_secs {
            let decodes = decode_by_sec.get(&sec).map(Vec::as_slice).unwrap_or(&[]);
            let fps = decodes.len() as f64;
            // Jitter: stddev of inter-decode gaps within the second; needs
            // at least 3 decodes for one meaningful gap pair.
            let jitter = if decodes.len() >= 3 {
                let gaps: Vec<f64> = decodes
                    .windows(2)
                    .map(|w| (w[1].decode_ts - w[0].decode_ts).as_millis_f64())
                    .collect();
                stddev(&gaps)
            } else {
                0.0
            };
            let height = mode_height(decodes);
            let bytes = self.bytes_per_sec.get(&sec).copied().unwrap_or(0);
            out.push(SecondTruth {
                second: sec,
                bitrate_kbps: bytes as f64 * 8.0 / 1000.0,
                fps,
                frame_jitter_ms: jitter,
                height,
            });
        }
        out
    }
}

impl Default for Receiver {
    fn default() -> Self {
        Self::new()
    }
}

fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

fn mode_height(decodes: &[DecodedFrame]) -> u32 {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for d in decodes {
        *counts.entry(d.height).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(h, c)| (c, h))
        .map(|(h, _)| h)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(ms: i64, frame: u64, of: u32, seq: u16, h: u32) -> ArrivedPacket {
        ArrivedPacket {
            arrival: Timestamp::from_millis(ms),
            send: Timestamp::from_millis(ms - 20),
            media: MediaKind::Video,
            frame_id: frame,
            frame_packets: of,
            height: h,
            seq,
            payload_len: 1000,
        }
    }

    #[test]
    fn in_order_frames_decode() {
        let mut r = Receiver::new();
        let mut seq = 0u16;
        for f in 0..30u64 {
            for _ in 0..2 {
                assert!(r.on_packet(pkt(f as i64 * 33, f, 2, seq, 360)).is_empty());
                seq += 1;
            }
        }
        assert_eq!(r.decoded_frames().len(), 30);
        // Decode times strictly ordered.
        let d = r.decoded_frames();
        assert!(d.windows(2).all(|w| w[1].decode_ts >= w[0].decode_ts));
    }

    #[test]
    fn gap_triggers_nack() {
        let mut r = Receiver::new();
        assert!(r.on_packet(pkt(0, 0, 1, 10, 360)).is_empty());
        let nacks = r.on_packet(pkt(33, 2, 1, 13, 360));
        assert_eq!(nacks, vec![11, 12]);
    }

    #[test]
    fn late_packet_no_nack() {
        let mut r = Receiver::new();
        r.on_packet(pkt(0, 0, 1, 10, 360));
        r.on_packet(pkt(33, 2, 1, 12, 360)); // NACK 11
        let nacks = r.on_packet(pkt(40, 1, 1, 11, 360)); // late arrival
        assert!(nacks.is_empty());
    }

    #[test]
    fn incomplete_frame_abandoned_after_timeout() {
        let mut r = Receiver::new();
        r.on_packet(pkt(0, 0, 2, 0, 360)); // frame 0 incomplete (1/2)
        for f in 1..20u64 {
            r.on_packet(pkt(f as i64 * 33, f, 1, f as u16 + 1, 360));
        }
        // Frame 0 blocks until 300 ms pass, then later frames decode.
        assert!(r.abandoned() >= 1);
        assert!(r.decoded_frames().len() >= 10);
        assert!(r.decoded_frames().iter().all(|d| d.frame_id != 0));
    }

    #[test]
    fn rtx_recovery_completes_frame() {
        let mut r = Receiver::new();
        r.on_packet(pkt(0, 0, 2, 0, 360));
        // Second packet of frame 0 lost; recovered via rtx at 80 ms.
        let mut rtx = pkt(80, 0, 2, 1, 360);
        rtx.media = MediaKind::VideoRtx;
        r.on_packet(rtx);
        assert_eq!(r.decoded_frames().len(), 1);
    }

    #[test]
    fn keepalive_ignored() {
        let mut r = Receiver::new();
        let mut ka = pkt(10, u64::MAX, 1, 0, 0);
        ka.media = MediaKind::VideoRtx;
        ka.payload_len = 264;
        r.on_packet(ka);
        assert!(r.decoded_frames().is_empty());
        let gt = r.ground_truth(1);
        assert_eq!(gt[0].bitrate_kbps, 0.0);
    }

    #[test]
    fn ground_truth_counts_fps_and_bitrate() {
        let mut r = Receiver::new();
        for (seq, f) in (0..60u64).enumerate() {
            // 30 fps: frames at 33 ms intervals over 2 seconds.
            r.on_packet(pkt(f as i64 * 33, f, 1, seq as u16, 270));
        }
        let gt = r.ground_truth(2);
        assert_eq!(gt.len(), 2);
        // ~30 fps in each full second (jitter-buffer shifts a couple).
        assert!(gt[0].fps >= 25.0 && gt[0].fps <= 32.0, "fps {}", gt[0].fps);
        // 1000 B/frame * ~30 frames = ~240 kbps.
        assert!(
            (gt[0].bitrate_kbps - 240.0).abs() < 40.0,
            "bitrate {}",
            gt[0].bitrate_kbps
        );
        assert_eq!(gt[0].height, 270);
    }

    #[test]
    fn jitter_reflects_irregular_decode_gaps() {
        let mut r = Receiver::new();
        let mut t = 0i64;
        // Irregular gaps: alternating 10 / 80 ms.
        for (seq, f) in (0..20u64).enumerate() {
            r.on_packet(pkt(t, f, 1, seq as u16, 360));
            t += if f % 2 == 0 { 10 } else { 80 };
        }
        let gt = r.ground_truth(1);
        assert!(
            gt[0].frame_jitter_ms > 10.0,
            "jitter {}",
            gt[0].frame_jitter_ms
        );
    }

    #[test]
    fn feedback_measures_loss_and_rate() {
        let mut r = Receiver::new();
        for i in 0..50u64 {
            r.on_packet(pkt(i as i64 * 10, i, 1, i as u16, 360));
        }
        let fb = r.feedback_for_second(0, 100);
        assert!((fb.loss_fraction - 0.5).abs() < 1e-9);
        // 50 packets × (1000 − 30 overhead) bytes = 388 kbit.
        assert!((fb.recv_rate_kbps - 388.0).abs() < 1e-9);
        assert!((fb.mean_owd_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mode_height_prefers_majority() {
        let mk = |h| DecodedFrame {
            decode_ts: Timestamp::ZERO,
            frame_id: 0,
            height: h,
        };
        assert_eq!(mode_height(&[mk(360), mk(180), mk(360)]), 360);
        assert_eq!(mode_height(&[]), 0);
    }
}
