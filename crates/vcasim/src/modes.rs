//! Application modes beyond the two-person video call (paper §7):
//! multi-party conferences (several video streams multiplexed on one UDP
//! flow, as an SFU forwards them) and video-off calls.

use crate::receiver::SecondTruth;
use crate::session::{SessionTrace, SimPacket};
use vcaml_rtp::MediaKind;

/// Merges per-participant downstream sessions into one flow, as an SFU
/// would forward them to a single receiver. Each participant's RTP
/// streams get a distinct SSRC namespace; per-second ground truth is
/// aggregated (bitrates and frame rates add; the jitter reported is the
/// participant mean; the height is the maximum rendered tile).
///
/// # Panics
/// Panics if `sessions` is empty or durations differ.
pub fn merge_multiparty(sessions: &[SessionTrace]) -> SessionTrace {
    assert!(!sessions.is_empty(), "no participants");
    let duration = sessions[0].duration_secs;
    assert!(
        sessions.iter().all(|s| s.duration_secs == duration),
        "participant sessions must share a duration"
    );
    let mut packets: Vec<SimPacket> = Vec::new();
    for (i, s) in sessions.iter().enumerate() {
        let ssrc_base = (i as u32 + 1) << 20;
        for p in &s.packets {
            let mut p = *p;
            if let Some(h) = p.rtp.as_mut() {
                h.ssrc = h.ssrc.wrapping_add(ssrc_base);
            }
            packets.push(p);
        }
    }
    packets.sort_by_key(|p| (p.arrival_ts, p.send_ts));

    let truth: Vec<SecondTruth> = (0..duration as usize)
        .map(|sec| {
            let rows: Vec<&SecondTruth> =
                sessions.iter().filter_map(|s| s.truth.get(sec)).collect();
            SecondTruth {
                second: sec as i64,
                bitrate_kbps: rows.iter().map(|r| r.bitrate_kbps).sum(),
                fps: rows.iter().map(|r| r.fps).sum(),
                frame_jitter_ms: rows.iter().map(|r| r.frame_jitter_ms).sum::<f64>()
                    / rows.len().max(1) as f64,
                height: rows.iter().map(|r| r.height).max().unwrap_or(0),
            }
        })
        .collect();

    SessionTrace {
        vca: sessions[0].vca,
        packets,
        truth,
        duration_secs: duration,
    }
}

/// Converts a session into its video-off counterpart: the sender keeps
/// audio and control traffic but sends no video or retransmissions, and
/// ground-truth video QoE is zero.
pub fn video_off(session: &SessionTrace) -> SessionTrace {
    let packets = session
        .packets
        .iter()
        .filter(|p| matches!(p.media, MediaKind::Audio | MediaKind::Control))
        .copied()
        .collect();
    let truth = session
        .truth
        .iter()
        .map(|t| SecondTruth {
            second: t.second,
            bitrate_kbps: 0.0,
            fps: 0.0,
            frame_jitter_ms: 0.0,
            height: 0,
        })
        .collect();
    SessionTrace {
        vca: session.vca,
        packets,
        truth,
        duration_secs: session.duration_secs,
    }
}

/// Silences the video sender for seconds `[from_sec, to_sec)` — a DTX /
/// camera-off segment in the middle of an otherwise normal call. Video
/// and retransmission packets whose *send* time falls in the segment are
/// dropped (the sender stopped encoding, so nothing crosses the link),
/// audio and control continue, and ground truth for those seconds is
/// zeroed. Seconds outside the segment are untouched.
///
/// # Panics
/// Panics unless `from_sec < to_sec` and the segment fits in the call.
pub fn dtx_segment(session: &SessionTrace, from_sec: u32, to_sec: u32) -> SessionTrace {
    assert!(from_sec < to_sec, "empty DTX segment");
    assert!(
        to_sec <= session.duration_secs,
        "DTX segment past end of call"
    );
    let silenced = |sec: i64| sec >= from_sec as i64 && sec < to_sec as i64;
    let packets = session
        .packets
        .iter()
        .filter(|p| match p.media {
            MediaKind::Video | MediaKind::VideoRtx => !silenced(p.send_ts.second_index()),
            MediaKind::Audio | MediaKind::Control => true,
        })
        .copied()
        .collect();
    let truth = session
        .truth
        .iter()
        .map(|t| {
            if silenced(t.second) {
                SecondTruth {
                    second: t.second,
                    bitrate_kbps: 0.0,
                    fps: 0.0,
                    frame_jitter_ms: 0.0,
                    height: 0,
                }
            } else {
                *t
            }
        })
        .collect();
    SessionTrace {
        vca: session.vca,
        packets,
        truth,
        duration_secs: session.duration_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::VcaProfile;
    use crate::session::{Session, SessionConfig};
    use vcaml_netem::{ConditionSchedule, LinkConfig, SecondCondition};
    use vcaml_rtp::VcaKind;

    fn one_session(seed: u64) -> SessionTrace {
        Session::new(SessionConfig {
            profile: VcaProfile::lab(VcaKind::Teams),
            schedule: ConditionSchedule::constant(SecondCondition {
                throughput_kbps: 10_000.0,
                delay_ms: 15.0,
                jitter_ms: 0.5,
                loss_pct: 0.0,
            }),
            duration_secs: 8,
            seed,
            link: LinkConfig::default(),
        })
        .run()
    }

    #[test]
    fn merge_aggregates_truth_and_packets() {
        let a = one_session(1);
        let b = one_session(2);
        let merged = merge_multiparty(&[a.clone(), b.clone()]);
        assert_eq!(merged.packets.len(), a.packets.len() + b.packets.len());
        assert!(merged
            .packets
            .windows(2)
            .all(|w| w[0].arrival_ts <= w[1].arrival_ts));
        let sec = 5;
        assert!((merged.truth[sec].fps - (a.truth[sec].fps + b.truth[sec].fps)).abs() < 1e-9);
        assert!(
            (merged.truth[sec].bitrate_kbps
                - (a.truth[sec].bitrate_kbps + b.truth[sec].bitrate_kbps))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn merge_keeps_ssrcs_distinct() {
        let merged = merge_multiparty(&[one_session(1), one_session(2)]);
        let video_ssrcs: std::collections::HashSet<u32> = merged
            .packets
            .iter()
            .filter(|p| p.media == MediaKind::Video)
            .map(|p| p.rtp.unwrap().ssrc)
            .collect();
        assert_eq!(video_ssrcs.len(), 2);
    }

    #[test]
    fn video_off_strips_video_and_truth() {
        let off = video_off(&one_session(3));
        assert!(off
            .packets
            .iter()
            .all(|p| matches!(p.media, MediaKind::Audio | MediaKind::Control)));
        assert!(!off.packets.is_empty());
        assert!(off
            .truth
            .iter()
            .all(|t| t.fps == 0.0 && t.bitrate_kbps == 0.0));
    }

    #[test]
    #[should_panic(expected = "no participants")]
    fn empty_merge_rejected() {
        let _ = merge_multiparty(&[]);
    }

    #[test]
    fn dtx_zeroes_segment_and_keeps_rest() {
        let base = one_session(4);
        let dtx = dtx_segment(&base, 3, 6);
        assert_eq!(dtx.truth.len(), base.truth.len());
        for t in &dtx.truth {
            if (3..6).contains(&t.second) {
                assert_eq!(t.fps, 0.0);
                assert_eq!(t.bitrate_kbps, 0.0);
                assert_eq!(t.height, 0);
            }
        }
        // Seconds outside the segment are byte-for-byte the originals.
        assert_eq!(dtx.truth[1], base.truth[1]);
        assert_eq!(dtx.truth[7], base.truth[7]);
        // No video is sent during the segment; audio keeps flowing.
        let in_seg = |p: &SimPacket| (3..6).contains(&p.send_ts.second_index());
        assert!(!dtx
            .packets
            .iter()
            .any(|p| in_seg(p) && matches!(p.media, MediaKind::Video | MediaKind::VideoRtx)));
        assert!(dtx
            .packets
            .iter()
            .any(|p| in_seg(p) && p.media == MediaKind::Audio));
        // Video resumes after the segment.
        assert!(dtx
            .packets
            .iter()
            .any(|p| p.send_ts.second_index() >= 6 && p.media == MediaKind::Video));
    }

    #[test]
    #[should_panic(expected = "empty DTX segment")]
    fn dtx_rejects_empty_segment() {
        let _ = dtx_segment(&one_session(5), 4, 4);
    }
}
