//! The in-lab corpus: calls under NDT-trace-driven emulation (§4.2).
//!
//! Each call replays a synthetic speed test: per-second RTT and loss
//! series with throughput resampled from a Normal fit, means capped at
//! 10 Mbps — "challenging network conditions".

use crate::{convert::to_core_trace, CorpusConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcaml::Trace;
use vcaml_netem::{synth_ndt_schedule, LinkConfig};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

/// Generates the in-lab corpus for one VCA.
pub fn inlab_corpus(vca: VcaKind, cfg: &CorpusConfig) -> Vec<Trace> {
    assert!(cfg.n_calls > 0 && cfg.min_secs > 0 && cfg.min_secs <= cfg.max_secs);
    let profile = VcaProfile::lab(vca);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1ab);
    (0..cfg.n_calls)
        .map(|i| {
            let secs = rng.gen_range(cfg.min_secs..=cfg.max_secs);
            let trace_seed = cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
            let schedule = synth_ndt_schedule(trace_seed, secs as usize);
            let session = Session::new(SessionConfig {
                profile: profile.clone(),
                schedule,
                duration_secs: secs,
                seed: trace_seed ^ 0xca11,
                link: LinkConfig::default(),
            })
            .run();
            to_core_trace(&session, profile.payload_map)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_calls() {
        let traces = inlab_corpus(VcaKind::Webex, &CorpusConfig::small(1));
        assert_eq!(traces.len(), 6);
        for t in &traces {
            assert!(t.is_complete());
            assert!((20..=30).contains(&t.duration_secs));
            assert!(!t.packets.is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let a = inlab_corpus(VcaKind::Meet, &CorpusConfig::small(7));
        let b = inlab_corpus(VcaKind::Meet, &CorpusConfig::small(7));
        assert_eq!(a[0].packets.len(), b[0].packets.len());
        assert_eq!(a[2].truth.len(), b[2].truth.len());
        let c = inlab_corpus(VcaKind::Meet, &CorpusConfig::small(8));
        assert_ne!(
            a.iter().map(|t| t.packets.len()).collect::<Vec<_>>(),
            c.iter().map(|t| t.packets.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn conditions_are_challenging() {
        // Under <10 Mbps NDT-style conditions, mean bitrate stays well
        // below the Teams ceiling and QoE varies across calls.
        let traces = inlab_corpus(
            VcaKind::Teams,
            &CorpusConfig {
                n_calls: 8,
                min_secs: 25,
                max_secs: 35,
                seed: 3,
            },
        );
        let means: Vec<f64> = traces
            .iter()
            .map(|t| t.truth.iter().map(|r| r.bitrate_kbps).sum::<f64>() / t.truth.len() as f64)
            .collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 200.0,
            "bitrate spread {spread} too small: {means:?}"
        );
    }
}
