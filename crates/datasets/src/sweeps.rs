//! The Table A.6 single-impairment sweeps used for §5.4 ("Effect of
//! Network Conditions"): one parameter varied, everything else at the
//! defaults, four calls per combination.

use crate::convert::to_core_trace;
use vcaml::Trace;
use vcaml_netem::{ImpairmentDim, ImpairmentProfile, LinkConfig};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

/// Calls per parameter combination (paper: "repeated for four calls").
pub const CALLS_PER_CELL: usize = 4;

/// Generates the corpus for one sweep cell (dimension at a value).
pub fn sweep_value_corpus(
    vca: VcaKind,
    profile: ImpairmentProfile,
    calls: usize,
    secs: u32,
    seed: u64,
) -> Vec<Trace> {
    assert!(calls > 0 && secs > 0);
    let vca_profile = VcaProfile::lab(vca);
    (0..calls)
        .map(|i| {
            let call_seed = seed
                .wrapping_mul(0x5ee9)
                .wrapping_add((profile.value * 1000.0) as u64)
                .wrapping_add(i as u64);
            let schedule = profile.schedule(secs as usize, call_seed);
            let session = Session::new(SessionConfig {
                profile: vca_profile.clone(),
                schedule,
                duration_secs: secs,
                seed: call_seed ^ 0x5a5a,
                link: LinkConfig::default(),
            })
            .run();
            to_core_trace(&session, vca_profile.payload_map)
        })
        .collect()
}

/// Generates corpora for every value of one impairment dimension.
/// Returns `(value, traces)` pairs in sweep order.
pub fn sweep_corpus(
    vca: VcaKind,
    dim: ImpairmentDim,
    calls_per_cell: usize,
    secs: u32,
    seed: u64,
) -> Vec<(f64, Vec<Trace>)> {
    dim.values()
        .iter()
        .map(|&v| {
            let traces = sweep_value_corpus(
                vca,
                ImpairmentProfile { dim, value: v },
                calls_per_cell,
                secs,
                seed,
            );
            (v, traces)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_sweep_grid() {
        let sweep = sweep_corpus(VcaKind::Webex, ImpairmentDim::PacketLoss, 2, 15, 1);
        assert_eq!(sweep.len(), 6); // {1,2,5,10,15,20}%
        assert_eq!(sweep[0].0, 1.0);
        assert_eq!(sweep[5].0, 20.0);
        for (_, traces) in &sweep {
            assert_eq!(traces.len(), 2);
            assert!(traces.iter().all(Trace::is_complete));
        }
    }

    #[test]
    fn higher_loss_degrades_fps() {
        let low = sweep_value_corpus(
            VcaKind::Teams,
            ImpairmentProfile {
                dim: ImpairmentDim::PacketLoss,
                value: 1.0,
            },
            3,
            20,
            2,
        );
        let high = sweep_value_corpus(
            VcaKind::Teams,
            ImpairmentProfile {
                dim: ImpairmentDim::PacketLoss,
                value: 20.0,
            },
            3,
            20,
            2,
        );
        let mean_fps = |ts: &[Trace]| {
            let (mut s, mut n) = (0.0, 0.0);
            for t in ts {
                for r in &t.truth {
                    s += r.fps;
                    n += 1.0;
                }
            }
            s / n
        };
        assert!(
            mean_fps(&low) > mean_fps(&high) + 2.0,
            "low-loss fps {} vs high-loss {}",
            mean_fps(&low),
            mean_fps(&high)
        );
    }

    #[test]
    fn throughput_sweep_controls_bitrate() {
        let slow = sweep_value_corpus(
            VcaKind::Teams,
            ImpairmentProfile {
                dim: ImpairmentDim::MeanThroughput,
                value: 200.0,
            },
            2,
            20,
            3,
        );
        let fast = sweep_value_corpus(
            VcaKind::Teams,
            ImpairmentProfile {
                dim: ImpairmentDim::MeanThroughput,
                value: 4000.0,
            },
            2,
            20,
            3,
        );
        let mean_br = |ts: &[Trace]| {
            let (mut s, mut n) = (0.0, 0.0);
            for t in ts {
                for r in &t.truth {
                    s += r.bitrate_kbps;
                    n += 1.0;
                }
            }
            s / n
        };
        assert!(mean_br(&fast) > mean_br(&slow) * 2.0);
    }
}
