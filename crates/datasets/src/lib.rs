//! # vcaml-datasets — corpus generation
//!
//! Builds the paper's two evaluation corpora plus the synthetic
//! sensitivity sweeps, standing in for the unavailable originals:
//!
//! * [`inlab`] — calls under NDT-trace-driven emulated conditions
//!   (paper §4.2, mean speeds < 10 Mbps, per-second replay);
//! * [`realworld`] — a 15-household deployment model with ISP speed
//!   tiers, mostly-good conditions, and a tail of degraded calls
//!   (§4.2: higher and stabler QoE than the lab corpus);
//! * [`sweeps`] — the Table A.6 single-impairment grid, four calls per
//!   cell (§5.4);
//! * [`convert`] — [`vcaml_vcasim::SessionTrace`] → [`vcaml::Trace`]
//!   adaptation.
//!
//! All corpora are deterministic given their seed.

pub mod convert;
pub mod inlab;
pub mod realworld;
pub mod sweeps;

pub use convert::to_core_trace;
pub use inlab::inlab_corpus;
pub use realworld::realworld_corpus;
pub use sweeps::{sweep_corpus, sweep_value_corpus};

/// Size/duration knobs for corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of calls to simulate.
    pub n_calls: usize,
    /// Minimum call duration, seconds.
    pub min_secs: u32,
    /// Maximum call duration, seconds.
    pub max_secs: u32,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small corpus for tests and quick runs.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            n_calls: 6,
            min_secs: 20,
            max_secs: 30,
            seed,
        }
    }

    /// The default in-lab corpus scale (paper: 11k–15k seconds per VCA;
    /// scaled down to keep the full reproduction tractable).
    pub fn inlab_default(seed: u64) -> Self {
        CorpusConfig {
            n_calls: 36,
            min_secs: 45,
            max_secs: 90,
            seed,
        }
    }

    /// One fixed-length call, as used per cell by the
    /// `vcaml-scenario` impairment grid: every cell sees exactly
    /// `secs` seconds of traffic so scorecards stay comparable.
    pub fn scenario_cell(secs: u32, seed: u64) -> Self {
        CorpusConfig {
            n_calls: 1,
            min_secs: secs,
            max_secs: secs,
            seed,
        }
    }

    /// The default real-world corpus scale (paper: 15–25 s calls).
    pub fn realworld_default(seed: u64) -> Self {
        CorpusConfig {
            n_calls: 60,
            min_secs: 15,
            max_secs: 25,
            seed,
        }
    }
}
