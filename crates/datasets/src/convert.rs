//! Adapts simulator output to the monitor-side trace model the inference
//! methods consume.

use vcaml::{Trace, TracePacket, TruthRow};
use vcaml_rtp::PayloadMap;
use vcaml_vcasim::SessionTrace;

/// Converts a simulated session into a [`Trace`].
///
/// The packet view keeps exactly what a monitor would have: arrival time,
/// IP total length, the RTP header (parseable from the wire bytes), and —
/// for evaluation only — the simulator's ground-truth media class.
pub fn to_core_trace(session: &SessionTrace, payload_map: PayloadMap) -> Trace {
    let packets = session
        .packets
        .iter()
        .map(|p| TracePacket {
            ts: p.arrival_ts,
            size: p.ip_total_len,
            rtp: p.rtp,
            truth_media: Some(p.media),
        })
        .collect();
    let truth = session
        .truth
        .iter()
        .map(|t| TruthRow {
            second: t.second,
            bitrate_kbps: t.bitrate_kbps,
            fps: t.fps,
            frame_jitter_ms: t.frame_jitter_ms,
            height: t.height,
        })
        .collect();
    Trace {
        vca: session.vca,
        payload_map,
        packets,
        truth,
        duration_secs: session.duration_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netem::LinkConfig;
    use vcaml_netem::{ConditionSchedule, SecondCondition};
    use vcaml_rtp::VcaKind;
    use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

    #[test]
    fn conversion_preserves_counts_and_order() {
        let session = Session::new(SessionConfig {
            profile: VcaProfile::lab(VcaKind::Teams),
            schedule: ConditionSchedule::constant(SecondCondition::paper_default()),
            duration_secs: 8,
            seed: 1,
            link: LinkConfig::default(),
        })
        .run();
        let trace = to_core_trace(&session, PayloadMap::lab(VcaKind::Teams));
        assert_eq!(trace.packets.len(), session.packets.len());
        assert_eq!(trace.truth.len(), 8);
        assert!(trace.is_complete());
        assert!(trace.packets.windows(2).all(|w| w[0].ts <= w[1].ts));
        // RTP headers survive, PT classification works.
        assert!(trace.rtp_video_packets().count() > 50);
    }
}
