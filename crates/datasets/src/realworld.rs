//! The real-world corpus: a model of the paper's 15-household Raspberry
//! Pi deployment (§4.2).
//!
//! Each household has an ISP speed tier well above VCA needs, so most
//! calls see excellent conditions — the paper observes higher and stabler
//! QoE than in the lab — while a small fraction of calls are degraded by
//! cross-traffic or Wi-Fi trouble ("a small fraction of calls with low
//! QoE").

use crate::{convert::to_core_trace, CorpusConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vcaml::Trace;
use vcaml_netem::{ConditionSchedule, LinkConfig, SecondCondition};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

/// Number of deployed households (paper §4.2).
pub const N_HOUSEHOLDS: usize = 15;

/// Fraction of calls hit by a degradation episode.
const DEGRADED_FRACTION: f64 = 0.10;

/// Per-household access characteristics.
#[derive(Debug, Clone, Copy)]
struct Household {
    /// Access downlink in kbps (speed tiers 25–940 Mbps in the study; the
    /// VCA only ever uses a few Mbps of it).
    tier_kbps: f64,
    /// Baseline one-way delay, ms.
    base_owd_ms: f64,
}

fn households(seed: u64) -> Vec<Household> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x404);
    let tiers_mbps = [25.0, 50.0, 100.0, 100.0, 200.0, 300.0, 500.0, 940.0];
    (0..N_HOUSEHOLDS)
        .map(|_| Household {
            tier_kbps: tiers_mbps[rng.gen_range(0..tiers_mbps.len())] * 1000.0,
            base_owd_ms: rng.gen_range(4.0..25.0),
        })
        .collect()
}

/// Builds the per-second schedule for one call from one household.
fn call_schedule(h: Household, secs: u32, rng: &mut StdRng) -> ConditionSchedule {
    let degraded = rng.gen::<f64>() < DEGRADED_FRACTION;
    let seconds = (0..secs)
        .map(|_| {
            if degraded {
                SecondCondition {
                    // Cross-traffic leaves only a slice of the tier.
                    throughput_kbps: rng.gen_range(250.0..2_500.0),
                    delay_ms: h.base_owd_ms + rng.gen_range(5.0..60.0),
                    jitter_ms: rng.gen_range(1.0..8.0),
                    loss_pct: if rng.gen::<f64>() < 0.4 {
                        rng.gen_range(0.2..3.0)
                    } else {
                        0.0
                    },
                }
            } else {
                SecondCondition {
                    throughput_kbps: h.tier_kbps * rng.gen_range(0.6..0.95),
                    delay_ms: h.base_owd_ms + rng.gen_range(0.0..4.0),
                    // Residential paths rarely reorder; keep per-packet
                    // jitter well under the intra-burst packet spacing.
                    jitter_ms: rng.gen_range(0.0..0.15),
                    loss_pct: 0.0,
                }
            }
        })
        .collect();
    ConditionSchedule::new(seconds)
}

/// Generates the real-world corpus for one VCA.
pub fn realworld_corpus(vca: VcaKind, cfg: &CorpusConfig) -> Vec<Trace> {
    assert!(cfg.n_calls > 0 && cfg.min_secs > 0 && cfg.min_secs <= cfg.max_secs);
    let profile = VcaProfile::real_world(vca);
    let homes = households(cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x3ea1);
    (0..cfg.n_calls)
        .map(|i| {
            let home = homes[i % homes.len()];
            let secs = rng.gen_range(cfg.min_secs..=cfg.max_secs);
            let schedule = call_schedule(home, secs, &mut rng);
            let session = Session::new(SessionConfig {
                profile: profile.clone(),
                schedule,
                duration_secs: secs,
                seed: cfg.seed.wrapping_mul(0x51_7cc1).wrapping_add(i as u64),
                link: LinkConfig::default(),
            })
            .run();
            to_core_trace(&session, profile.payload_map)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_qoe(traces: &[Trace]) -> (f64, f64) {
        let mut fps = 0.0;
        let mut bitrate = 0.0;
        let mut n = 0.0;
        for t in traces {
            for r in &t.truth {
                fps += r.fps;
                bitrate += r.bitrate_kbps;
                n += 1.0;
            }
        }
        (fps / n, bitrate / n)
    }

    #[test]
    fn corpus_shape() {
        let traces = realworld_corpus(VcaKind::Meet, &CorpusConfig::small(5));
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(Trace::is_complete));
        assert!(traces.iter().all(|t| (15..=30).contains(&t.duration_secs)));
    }

    #[test]
    fn real_world_qoe_beats_inlab() {
        let cfg = CorpusConfig {
            n_calls: 10,
            min_secs: 20,
            max_secs: 25,
            seed: 11,
        };
        let rw = realworld_corpus(VcaKind::Teams, &cfg);
        let lab = crate::inlab_corpus(VcaKind::Teams, &cfg);
        let (rw_fps, rw_br) = mean_qoe(&rw);
        let (lab_fps, lab_br) = mean_qoe(&lab);
        assert!(rw_fps > lab_fps, "rw fps {rw_fps} vs lab {lab_fps}");
        assert!(rw_br > lab_br, "rw bitrate {rw_br} vs lab {lab_br}");
    }

    #[test]
    fn meet_real_world_reaches_higher_resolutions() {
        let cfg = CorpusConfig {
            n_calls: 12,
            min_secs: 20,
            max_secs: 25,
            seed: 2,
        };
        let rw = realworld_corpus(VcaKind::Meet, &cfg);
        let max_h = rw
            .iter()
            .flat_map(|t| t.truth.iter().map(|r| r.height))
            .max()
            .unwrap();
        assert!(max_h >= 540, "max height {max_h}");
    }

    #[test]
    fn webex_real_world_uses_rw_payload_types() {
        let traces = realworld_corpus(VcaKind::Webex, &CorpusConfig::small(3));
        // Video PT 100, no rtx stream.
        assert!(traces[0].rtp_video_packets().count() > 0);
        assert_eq!(traces[0].rtp_rtx_packets().count(), 0);
    }

    #[test]
    fn some_calls_are_degraded() {
        let cfg = CorpusConfig {
            n_calls: 30,
            min_secs: 15,
            max_secs: 20,
            seed: 9,
        };
        let rw = realworld_corpus(VcaKind::Webex, &cfg);
        let mut call_fps: Vec<f64> = rw
            .iter()
            .map(|t| t.truth.iter().map(|r| r.fps).sum::<f64>() / t.truth.len() as f64)
            .collect();
        call_fps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The tail call should be clearly worse than the median.
        assert!(
            call_fps[0] < call_fps[call_fps.len() / 2] - 2.0,
            "{call_fps:?}"
        );
    }
}
