//! Satellite: the scorecard is byte-identical across repeated runs and
//! across monitor thread counts for the same seed and grid.

use vcaml_scenario::{prepare, run_grid, smoke_grid, Tolerances};

/// Two runs of the same grid with the same seed must serialize to the
/// same bytes: no timestamps, no map ordering, no hidden RNG state.
#[test]
fn same_seed_same_grid_is_byte_identical() {
    let a = run_grid(&smoke_grid(), 7, 1, &Tolerances::default()).to_json();
    let b = run_grid(&smoke_grid(), 7, 1, &Tolerances::default()).to_json();
    assert_eq!(a, b, "repeated runs diverged");
}

/// Thread count only changes monitor internals; the per-window reports
/// (and hence the scorecard bytes) must not move.
#[test]
fn thread_count_does_not_change_the_scorecard() {
    let one = run_grid(&smoke_grid(), 7, 1, &Tolerances::default()).to_json();
    let four = run_grid(&smoke_grid(), 7, 4, &Tolerances::default()).to_json();
    assert_eq!(one, four, "thread count leaked into the scorecard");
}

/// Different seeds must actually change the traffic — guards against a
/// seed that is accepted but ignored, which would make the determinism
/// assertions above vacuous.
#[test]
fn different_seeds_produce_different_traffic() {
    let spec_a = smoke_grid();
    let truth_a = prepare(&spec_a[0], 7).truth;
    let truth_b = prepare(&spec_a[0], 8).truth;
    assert_ne!(truth_a, truth_b, "grid seed had no effect on the session");
}

/// `prepare` itself is deterministic: building the same cell twice
/// yields identical ground truth.
#[test]
fn prepare_is_deterministic_per_cell() {
    let specs = smoke_grid();
    for sp in &specs {
        let a = prepare(sp, 7).truth;
        let b = prepare(sp, 7).truth;
        assert_eq!(a, b, "prepare({}) not deterministic", sp.name);
    }
}
