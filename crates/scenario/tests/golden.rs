//! Satellite: golden verdicts for the fixed-seed smoke mini-grid.
//!
//! Exact (scenario, method, verdict) assertions for the 3-scenario × 4
//! method smoke subset at the default seed. If an engine or model
//! change moves one of these verdicts, this test names the exact cell —
//! update the expectations (and the committed baseline scorecard)
//! deliberately or fix the regression.

use vcaml::Method;
use vcaml_scenario::{run_grid, smoke_grid, Tolerances, Verdict};

const GOLDEN_SEED: u64 = 7;

#[test]
fn smoke_grid_verdicts_match_golden() {
    let card = run_grid(&smoke_grid(), GOLDEN_SEED, 1, &Tolerances::default());

    let expected: &[(&str, Method, Verdict)] = &[
        ("baseline", Method::RtpMl, Verdict::Pass),
        ("baseline", Method::IpUdpMl, Verdict::Pass),
        ("baseline", Method::RtpHeuristic, Verdict::Pass),
        ("baseline", Method::IpUdpHeuristic, Verdict::Pass),
        ("burst_loss", Method::RtpMl, Verdict::Pass),
        ("burst_loss", Method::IpUdpMl, Verdict::Pass),
        ("burst_loss", Method::RtpHeuristic, Verdict::Pass),
        ("burst_loss", Method::IpUdpHeuristic, Verdict::Pass),
        // DTX zeroes seven mid-call windows; the ML variants smear the
        // learned fps across the silence while the RTP heuristic tracks
        // the (absent) marker bits exactly.
        ("dtx_silence", Method::RtpMl, Verdict::Degraded),
        ("dtx_silence", Method::IpUdpMl, Verdict::Degraded),
        ("dtx_silence", Method::RtpHeuristic, Verdict::Pass),
        ("dtx_silence", Method::IpUdpHeuristic, Verdict::Pass),
    ];

    assert_eq!(card.cells.len(), expected.len(), "smoke grid size changed");
    for ((scenario, method, verdict), cell) in expected.iter().zip(&card.cells) {
        assert_eq!(
            cell.scenario, *scenario,
            "cell order changed: expected {scenario}, got {}",
            cell.scenario
        );
        assert_eq!(cell.method, *method, "method order changed in {scenario}");
        assert_eq!(
            cell.verdict,
            *verdict,
            "golden verdict moved for {scenario} / {}: {:?} -> {:?} \
             (fps_mae {:.2}, br_mrae {:?}, res_acc {:?})",
            method.name(),
            verdict,
            cell.verdict,
            cell.fps_mae,
            cell.bitrate_mrae,
            cell.res_acc,
        );
    }

    // The smoke subset must stay green: it is the CI hard gate.
    assert_eq!(card.exit_code(), 0, "smoke grid has a failing cell");
    // Every cell saw the full call.
    for cell in &card.cells {
        assert_eq!(cell.windows, 20, "{} lost windows", cell.scenario);
    }
}
