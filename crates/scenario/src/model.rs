//! Deterministic ML model training for the grid's two ML methods.
//!
//! Models are trained once per VCA on an in-lab corpus whose seed space
//! is disjoint from every scenario cell seed (cell seeds are FNV-mixed,
//! training seeds are small constants), so no scenario scores a model on
//! its own training traffic.

use vcaml::{build_samples, PipelineOpts};
use vcaml_datasets::{inlab_corpus, CorpusConfig};
use vcaml_mlcore::{Dataset, RandomForest, RandomForestParams, Task};
use vcaml_rtp::VcaKind;

/// Frame-rate and bitrate regressors for both ML feature sets of one VCA.
pub struct VcaModels {
    /// fps regressor on the 14 IP/UDP features.
    pub ipudp_fps: RandomForest,
    /// bitrate regressor on the 14 IP/UDP features.
    pub ipudp_bitrate: RandomForest,
    /// fps regressor on the 24 flow+RTP features.
    pub rtp_fps: RandomForest,
    /// bitrate regressor on the 24 flow+RTP features.
    pub rtp_bitrate: RandomForest,
}

fn fit(names: &[String], rows: Vec<(&[f64], f64)>, params: &RandomForestParams) -> RandomForest {
    let mut d = Dataset::new(names.to_vec());
    for (row, y) in rows {
        d.push(row, y);
    }
    RandomForest::fit(&d, Task::Regression, params)
}

/// Trains all four regressors for `vca`.
pub fn train(vca: VcaKind) -> VcaModels {
    let cfg = CorpusConfig {
        n_calls: 4,
        min_secs: 18,
        max_secs: 24,
        seed: 0x5eed + vca as u64,
    };
    let traces = inlab_corpus(vca, &cfg);
    let mut opts = PipelineOpts::paper(vca);
    opts.forest = RandomForestParams {
        n_trees: 12,
        seed: 1,
        ..Default::default()
    };
    let set = build_samples(&traces, &opts);
    let params = opts.forest;
    VcaModels {
        ipudp_fps: fit(
            &set.ipudp_names,
            set.samples
                .iter()
                .map(|s| (s.ipudp_features.as_slice(), s.truth.fps))
                .collect(),
            &params,
        ),
        ipudp_bitrate: fit(
            &set.ipudp_names,
            set.samples
                .iter()
                .map(|s| (s.ipudp_features.as_slice(), s.truth.bitrate_kbps))
                .collect(),
            &params,
        ),
        rtp_fps: fit(
            &set.rtp_names,
            set.samples
                .iter()
                .map(|s| (s.rtp_features.as_slice(), s.truth.fps))
                .collect(),
            &params,
        ),
        rtp_bitrate: fit(
            &set.rtp_names,
            set.samples
                .iter()
                .map(|s| (s.rtp_features.as_slice(), s.truth.bitrate_kbps))
                .collect(),
            &params,
        ),
    }
}

/// Lazily-trained model cache keyed by VCA, so a grid run trains each
/// VCA's forests exactly once.
#[derive(Default)]
pub struct ModelCache {
    trained: Vec<(VcaKind, VcaModels)>,
}

impl ModelCache {
    /// The models for `vca`, training them on first use.
    pub fn get(&mut self, vca: VcaKind) -> &VcaModels {
        if let Some(i) = self.trained.iter().position(|(v, _)| *v == vca) {
            return &self.trained[i].1;
        }
        self.trained.push((vca, train(vca)));
        &self
            .trained
            .last()
            .expect("pushed just above") // lint: allow(no-unwrap-in-lib) -- a push on the line above guarantees a last element
            .1
    }
}
