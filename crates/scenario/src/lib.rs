//! # vcaml-scenario — impairment-grid accuracy harness
//!
//! Sweeps a grid of impaired network scenarios (burst loss, jitter
//! spikes, bandwidth drops, reordering, duplication, mid-call resolution
//! switches, DTX silence, multiparty SFU fan-in, plus `crates/datasets`
//! corpora) across all four estimation methods, driving every cell
//! through the production `MonitorRunner` ingestion path and scoring the
//! estimates against vcasim ground truth per window.
//!
//! Each cell classifies into a typed [`Verdict`] (`Pass` / `Degraded` /
//! `Fail`) under per-metric [`Tolerances`]; the `vcaml-scenario` binary
//! renders a terminal scorecard, writes deterministic
//! `bench_results/SCENARIO_scorecard.json`, and exits 0/1/2 so accuracy
//! regressions gate CI exactly like perf regressions do.

pub mod model;
pub mod report;
pub mod run;
pub mod score;
pub mod scorecard;
pub mod spec;
pub mod truth;

pub use model::{ModelCache, VcaModels};
pub use report::render;
pub use run::{prepare, run_method, Prepared, WindowEst};
pub use score::{CellScore, Tolerances, Verdict};
pub use scorecard::{compare, parse_cells, Comparison, ParsedCell, Scorecard, SCHEMA};
pub use spec::{cell_seed, grid, smoke_grid, ScenarioKind, ScenarioSpec};
pub use truth::WindowTruth;

use vcaml::{Method, ResolutionScheme};
use vcaml_vcasim::VcaProfile;

/// Runs a set of scenarios across all four methods and scores every
/// cell. Deterministic for a given `(specs, seed)` regardless of
/// `threads` — thread count only changes monitor internals, whose
/// window parity is an engine invariant.
pub fn run_grid(specs: &[ScenarioSpec], seed: u64, threads: usize, tol: &Tolerances) -> Scorecard {
    let mut models = ModelCache::default();
    let mut cells = Vec::with_capacity(specs.len() * Method::ALL.len());
    for sp in specs {
        let prep = prepare(sp, seed);
        let ladder = if sp.realworld_ladder {
            VcaProfile::real_world(sp.vca)
        } else {
            VcaProfile::lab(sp.vca)
        };
        // Classify against every height the scenario can legitimately
        // show: truth heights plus the full ladder, so estimate-derived
        // heights always map to a class and the scheme is independent
        // of which rungs the call happened to visit.
        let mut heights: Vec<u32> = prep.truth.iter().map(|t| t.height).collect();
        heights.extend(ladder.ladder.iter().map(|r| r.height));
        let scheme = ResolutionScheme::for_vca(sp.vca, &heights);
        let vca_models = models.get(sp.vca);
        for method in Method::ALL {
            let est = run_method(&prep, method, vca_models, threads);
            cells.push(score::score_cell(
                sp.name,
                method,
                &prep.truth,
                &est,
                &scheme,
                &ladder,
                tol,
                sp.tol_scale,
            ));
        }
    }
    Scorecard {
        seed,
        tolerances: *tol,
        cells,
    }
}
