//! Terminal scorecard rendering.

use crate::scorecard::Scorecard;

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"))
}

/// Renders the scorecard as an aligned terminal table with a summary
/// footer.
pub fn render(card: &Scorecard) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<20} {:<18} {:>4} {:>8} {:>8} {:>8}  {}\n",
        "scenario", "method", "win", "fps_mae", "br_mrae", "res_acc", "verdict"
    ));
    for c in &card.cells {
        s.push_str(&format!(
            "{:<20} {:<18} {:>4} {:>8.2} {:>8} {:>8}  {}\n",
            c.scenario,
            c.method.name(),
            c.windows,
            c.fps_mae,
            fmt_opt(c.bitrate_mrae),
            fmt_opt(c.res_acc),
            c.verdict.as_str().to_uppercase(),
        ));
    }
    let (pass, degraded, fail) = card.summary();
    s.push_str(&format!(
        "\n{} cells: {pass} pass, {degraded} degraded, {fail} fail (seed {})\n",
        card.cells.len(),
        card.seed
    ));
    if fail > 0 {
        s.push_str("accuracy gate: FAIL\n");
    } else {
        s.push_str("accuracy gate: ok\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{CellScore, Tolerances, Verdict};
    use vcaml::Method;

    #[test]
    fn table_lists_every_cell_and_the_gate_line() {
        let card = Scorecard {
            seed: 7,
            tolerances: Tolerances::default(),
            cells: vec![CellScore {
                scenario: "baseline".into(),
                method: Method::IpUdpMl,
                windows: 20,
                fps_mae: 2.0,
                bitrate_mrae: None,
                res_acc: Some(0.9),
                fps_verdict: Verdict::Pass,
                bitrate_verdict: None,
                res_verdict: Some(Verdict::Pass),
                verdict: Verdict::Pass,
            }],
        };
        let out = render(&card);
        assert!(out.contains("baseline"));
        assert!(out.contains("IP/UDP ML"));
        assert!(out.contains("accuracy gate: ok"));
        assert!(out.contains("1 cells: 1 pass, 0 degraded, 0 fail"));
    }
}
