//! Per-window ground truth extracted from simulator sessions and
//! dataset traces.
//!
//! vcasim sessions start at t ≈ 0 and the engine's window indices are
//! absolute on the capture clock, so with 1-second windows the
//! simulator's per-second truth row `second` *is* the monitor's window
//! index — no offset bookkeeping.

use vcaml::Trace;
use vcaml_vcasim::SessionTrace;

/// What was actually on screen during one estimation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTruth {
    /// Monitor window index (0-based from stream start).
    pub window: u64,
    /// True rendered frames per second.
    pub fps: f64,
    /// True media bitrate, kbps (payload only, per the paper's truth
    /// definition — network estimates include header overhead and so
    /// systematically overestimate).
    pub bitrate_kbps: f64,
    /// True frame height in pixels (0 when no video was rendered).
    pub height: u32,
}

/// Extracts per-window truth from a simulator session.
pub fn from_session(session: &SessionTrace) -> Vec<WindowTruth> {
    session
        .truth
        .iter()
        .filter(|t| t.second >= 0)
        .map(|t| WindowTruth {
            window: t.second as u64,
            fps: t.fps,
            bitrate_kbps: t.bitrate_kbps,
            height: t.height,
        })
        .collect()
}

/// Extracts per-window truth from a dataset trace (same row shape,
/// different container).
pub fn from_trace(trace: &Trace) -> Vec<WindowTruth> {
    trace
        .truth
        .iter()
        .filter(|t| t.second >= 0)
        .map(|t| WindowTruth {
            window: t.second as u64,
            fps: t.fps,
            bitrate_kbps: t.bitrate_kbps,
            height: t.height,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::cell_seed;
    use vcaml_datasets::{inlab_corpus, CorpusConfig};
    use vcaml_netem::{ConditionSchedule, LinkConfig, SecondCondition};
    use vcaml_rtp::VcaKind;
    use vcaml_vcasim::{dtx_segment, Session, SessionConfig, VcaProfile};

    fn cond(kbps: f64) -> SecondCondition {
        SecondCondition {
            throughput_kbps: kbps,
            delay_ms: 20.0,
            jitter_ms: 1.0,
            loss_pct: 0.0,
        }
    }

    fn run(vca: VcaKind, sched: ConditionSchedule, secs: u32, seed: u64) -> SessionTrace {
        Session::new(SessionConfig {
            profile: VcaProfile::lab(vca),
            schedule: sched,
            duration_secs: secs,
            seed,
            link: LinkConfig::default(),
        })
        .run()
    }

    #[test]
    fn windows_map_one_to_one_onto_truth_seconds() {
        let s = run(
            VcaKind::Teams,
            ConditionSchedule::constant(cond(5000.0)),
            10,
            1,
        );
        let wt = from_session(&s);
        assert_eq!(wt.len(), s.truth.len());
        for (w, t) in wt.iter().zip(&s.truth) {
            assert_eq!(w.window as i64, t.second);
            assert_eq!(w.fps, t.fps);
            assert_eq!(w.bitrate_kbps, t.bitrate_kbps);
            assert_eq!(w.height, t.height);
        }
    }

    #[test]
    fn mid_call_mode_switch_shows_in_window_heights() {
        // 3000 kbps for 8 s, then a hard drop to 500 kbps: the encoder
        // must descend the ladder, so late windows render lower and
        // slower than the pre-switch steady state.
        let sched = ConditionSchedule::new(
            (0..20)
                .map(|sec| cond(if sec < 8 { 3000.0 } else { 500.0 }))
                .collect(),
        );
        let wt = from_session(&run(VcaKind::Teams, sched, 20, 2));
        let high = &wt[6]; // settled pre-switch
        let low = &wt[18]; // settled post-switch
        assert!(
            high.height > low.height,
            "height did not drop: {} -> {}",
            high.height,
            low.height
        );
        assert!(high.bitrate_kbps > low.bitrate_kbps);
        assert!(high.fps > low.fps);
    }

    #[test]
    fn dtx_windows_have_zero_truth_and_neighbours_do_not() {
        let base = run(
            VcaKind::Meet,
            ConditionSchedule::constant(cond(5000.0)),
            16,
            3,
        );
        let wt = from_session(&dtx_segment(&base, 6, 10));
        for w in &wt {
            if (6..10).contains(&w.window) {
                assert_eq!(w.fps, 0.0);
                assert_eq!(w.bitrate_kbps, 0.0);
                assert_eq!(w.height, 0);
            }
        }
        assert!(wt[4].fps > 0.0 && wt[4].height > 0);
        assert!(wt[12].fps > 0.0 && wt[12].height > 0);
    }

    #[test]
    fn trace_truth_matches_session_shape() {
        let cfg = CorpusConfig {
            n_calls: 1,
            min_secs: 12,
            max_secs: 12,
            seed: 9,
        };
        let trace = inlab_corpus(VcaKind::Teams, &cfg).remove(0);
        let wt = from_trace(&trace);
        assert_eq!(wt.len(), trace.truth.len());
        assert!(wt.iter().any(|w| w.fps > 0.0 && w.height > 0));
        assert!(wt.windows(2).all(|p| p[1].window == p[0].window + 1));
    }

    #[test]
    fn cell_seed_is_stable_and_name_sensitive() {
        assert_eq!(cell_seed(7, "baseline"), cell_seed(7, "baseline"));
        assert_ne!(cell_seed(7, "baseline"), cell_seed(8, "baseline"));
        assert_ne!(cell_seed(7, "baseline"), cell_seed(7, "burst_loss"));
    }
}
