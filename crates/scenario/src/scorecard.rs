//! Deterministic scorecard JSON: writer, line-oriented reader, and the
//! `--compare` delta mode.
//!
//! The in-repo `serde_json` shim has no parser, so — like the monitor
//! binary's `--bench-summary` — the reader is a hand-rolled
//! field extractor over the one-cell-per-line layout the writer
//! guarantees.

use crate::score::{CellScore, Tolerances, Verdict};

/// Schema tag embedded in every scorecard.
pub const SCHEMA: &str = "vcaml-scenario/v1";

/// A full grid result ready to serialize.
pub struct Scorecard {
    /// Grid seed the run used.
    pub seed: u64,
    /// Tolerances the verdicts were judged against.
    pub tolerances: Tolerances,
    /// All cells, in grid × method emission order.
    pub cells: Vec<CellScore>,
}

impl Scorecard {
    /// `(pass, degraded, fail)` cell counts.
    pub fn summary(&self) -> (usize, usize, usize) {
        let count = |v: Verdict| self.cells.iter().filter(|c| c.verdict == v).count();
        (
            count(Verdict::Pass),
            count(Verdict::Degraded),
            count(Verdict::Fail),
        )
    }

    /// Gate exit code: 1 if any cell failed, else 0.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.cells.iter().any(|c| c.verdict == Verdict::Fail))
    }

    /// Renders the scorecard as deterministic JSON, one cell per line.
    /// Byte-identical output for identical runs is a tested invariant —
    /// no timestamps, no map iteration order, fixed float formatting.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"window_secs\": 1,\n");
        let t = &self.tolerances;
        s.push_str(&format!(
            "  \"tolerances\": {{\"fps_pass\":{:.2},\"fps_degraded\":{:.2},\"mrae_pass\":{:.2},\"mrae_degraded\":{:.2},\"res_pass\":{:.2},\"res_degraded\":{:.2},\"ipudp_heur_fps_scale\":{:.2}}},\n",
            t.fps_pass,
            t.fps_degraded,
            t.mrae_pass,
            t.mrae_degraded,
            t.res_pass,
            t.res_degraded,
            t.ipudp_heur_fps_scale
        ));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let opt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.4}"),
                None => "null".to_string(),
            };
            let opt_v = |v: Option<Verdict>| match v {
                Some(x) => format!("\"{}\"", x.as_str()),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "    {{\"scenario\":\"{}\",\"method\":\"{}\",\"windows\":{},\"fps_mae\":{:.4},\"bitrate_mrae\":{},\"res_acc\":{},\"fps\":\"{}\",\"bitrate\":{},\"resolution\":{},\"verdict\":\"{}\"}}{}\n",
                c.scenario,
                c.method.name(),
                c.windows,
                c.fps_mae,
                opt(c.bitrate_mrae),
                opt(c.res_acc),
                c.fps_verdict.as_str(),
                opt_v(c.bitrate_verdict),
                opt_v(c.res_verdict),
                c.verdict.as_str(),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        let (pass, degraded, fail) = self.summary();
        s.push_str(&format!(
            "  \"summary\": {{\"pass\":{pass},\"degraded\":{degraded},\"fail\":{fail},\"exit\":{}}}\n",
            self.exit_code()
        ));
        s.push_str("}\n");
        s
    }
}

/// One cell as read back from scorecard JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Scenario name.
    pub scenario: String,
    /// Method display name.
    pub method: String,
    /// Cell verdict.
    pub verdict: Verdict,
    /// fps MAE.
    pub fps_mae: f64,
    /// Bitrate MRAE if recorded.
    pub bitrate_mrae: Option<f64>,
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let rest = rest.strip_prefix('"')?;
    Some(rest.split('"').next().unwrap_or("").to_string())
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let token: String = rest
        .chars()
        .take_while(|c| !matches!(c, ',' | '}' | '\n'))
        .collect();
    let token = token.trim();
    if token == "null" {
        return None;
    }
    token.parse().ok()
}

/// Extracts the cell rows from scorecard JSON text (one cell per line,
/// as written by [`Scorecard::to_json`]).
pub fn parse_cells(text: &str) -> Vec<ParsedCell> {
    text.lines()
        .filter(|l| l.contains("\"scenario\":"))
        .filter_map(|line| {
            Some(ParsedCell {
                scenario: str_field(line, "scenario")?,
                method: str_field(line, "method")?,
                verdict: Verdict::parse(&str_field(line, "verdict")?)?,
                fps_mae: num_field(line, "fps_mae")?,
                bitrate_mrae: num_field(line, "bitrate_mrae"),
            })
        })
        .collect()
}

/// The outcome of comparing two scorecards.
pub struct Comparison {
    /// Human-readable delta table.
    pub report: String,
    /// Cells whose verdict worsened relative to the baseline.
    pub regressions: usize,
}

/// Compares `new` against the `old` baseline over the cell intersection
/// keyed by (scenario, method). A verdict that worsened is a
/// regression; improved or unchanged verdicts (and metric drift within
/// the same verdict) are reported but do not gate.
pub fn compare(old: &str, new: &str) -> Comparison {
    let old_cells = parse_cells(old);
    let new_cells = parse_cells(new);
    let mut report = String::new();
    report.push_str(&format!(
        "{:<20} {:<18} {:>9} {:>9}  {}\n",
        "scenario", "method", "old", "new", "delta"
    ));
    let mut regressions = 0usize;
    let mut matched = 0usize;
    for o in &old_cells {
        let Some(n) = new_cells
            .iter()
            .find(|n| n.scenario == o.scenario && n.method == o.method)
        else {
            report.push_str(&format!(
                "{:<20} {:<18} {:>9} {:>9}  missing in new scorecard\n",
                o.scenario,
                o.method,
                o.verdict.as_str(),
                "-"
            ));
            continue;
        };
        matched += 1;
        let delta = match n.verdict.rank().cmp(&o.verdict.rank()) {
            std::cmp::Ordering::Greater => {
                regressions += 1;
                "REGRESSED"
            }
            std::cmp::Ordering::Less => "improved",
            std::cmp::Ordering::Equal => "",
        };
        report.push_str(&format!(
            "{:<20} {:<18} {:>9} {:>9}  {} (fps_mae {:.2} -> {:.2})\n",
            n.scenario,
            n.method,
            o.verdict.as_str(),
            n.verdict.as_str(),
            delta,
            o.fps_mae,
            n.fps_mae,
        ));
    }
    for n in &new_cells {
        if !old_cells
            .iter()
            .any(|o| o.scenario == n.scenario && o.method == n.method)
        {
            report.push_str(&format!(
                "{:<20} {:<18} {:>9} {:>9}  new cell\n",
                n.scenario,
                n.method,
                "-",
                n.verdict.as_str()
            ));
        }
    }
    report.push_str(&format!(
        "\n{matched} cells compared, {regressions} verdict regression(s)\n"
    ));
    Comparison {
        report,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml::Method;

    fn card(verdict: Verdict) -> Scorecard {
        Scorecard {
            seed: 7,
            tolerances: Tolerances::default(),
            cells: vec![CellScore {
                scenario: "baseline".into(),
                method: Method::RtpHeuristic,
                windows: 20,
                fps_mae: 1.5,
                bitrate_mrae: Some(0.2),
                res_acc: Some(0.95),
                fps_verdict: verdict,
                bitrate_verdict: Some(verdict),
                res_verdict: None,
                verdict,
            }],
        }
    }

    #[test]
    fn json_roundtrips_through_the_line_parser() {
        let json = card(Verdict::Degraded).to_json();
        let cells = parse_cells(&json);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].scenario, "baseline");
        assert_eq!(cells[0].method, "RTP Heuristic");
        assert_eq!(cells[0].verdict, Verdict::Degraded);
        assert_eq!(cells[0].fps_mae, 1.5);
        assert_eq!(cells[0].bitrate_mrae, Some(0.2));
    }

    #[test]
    fn null_metrics_parse_as_none() {
        let mut c = card(Verdict::Pass);
        c.cells[0].bitrate_mrae = None;
        let cells = parse_cells(&c.to_json());
        assert_eq!(cells[0].bitrate_mrae, None);
    }

    #[test]
    fn worsened_verdict_is_a_regression() {
        let old = card(Verdict::Pass).to_json();
        let new = card(Verdict::Fail).to_json();
        let cmp = compare(&old, &new);
        assert_eq!(cmp.regressions, 1);
        assert!(cmp.report.contains("REGRESSED"));
        // The reverse direction is an improvement, not a gate.
        let cmp = compare(&new, &old);
        assert_eq!(cmp.regressions, 0);
        assert!(cmp.report.contains("improved"));
    }

    #[test]
    fn exit_code_tracks_failures() {
        assert_eq!(card(Verdict::Pass).exit_code(), 0);
        assert_eq!(card(Verdict::Degraded).exit_code(), 0);
        assert_eq!(card(Verdict::Fail).exit_code(), 1);
    }
}
