//! `vcaml-scenario` — run the impairment grid and gate on accuracy.
//!
//! ```text
//! vcaml-scenario [--smoke] [--seed N] [--threads N] [--out PATH] [--quiet]
//! vcaml-scenario --compare OLD.json NEW.json
//! ```
//!
//! Exit codes: 0 every cell passed or degraded (or no compare
//! regression), 1 at least one cell failed (or a verdict regressed
//! under `--compare`), 2 usage or I/O error.

use std::process::exit;
use vcaml_scenario::{compare, grid, render, run_grid, smoke_grid, Tolerances};

fn usage() -> ! {
    eprintln!(
        "usage: vcaml-scenario [--smoke] [--seed N] [--threads N] [--out PATH] [--quiet]\n\
                               [--inject-tolerance SCALE]\n\
                vcaml-scenario --compare OLD.json NEW.json\n\
         \n\
         Sweeps the netem x vcasim impairment grid across all four estimation\n\
         methods and scores them against simulator ground truth. Writes the\n\
         scorecard JSON (default bench_results/SCENARIO_scorecard.json) and\n\
         exits 1 when any cell fails, so CI gates on accuracy.\n\
         \n\
         --inject-tolerance SCALE multiplies the error bands by SCALE (and\n\
         divides the accuracy thresholds by it): a small SCALE provably flips\n\
         passing verdicts, which CI uses to self-test the gate."
    );
    exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();

    if raw.first().map(String::as_str) == Some("--compare") {
        if raw.len() != 3 {
            usage();
        }
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                exit(2);
            })
        };
        let cmp = compare(&read(&raw[1]), &read(&raw[2]));
        print!("{}", cmp.report);
        exit(i32::from(cmp.regressions > 0));
    }

    let mut smoke = false;
    let mut quiet = false;
    let mut seed: u64 = 7;
    let mut threads: usize = 1;
    let mut out = String::from("bench_results/SCENARIO_scorecard.json");
    let mut inject: Option<f64> = None;
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--quiet" => quiet = true,
            "--inject-tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => inject = Some(v),
                _ => usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => threads = v,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let specs = if smoke { smoke_grid() } else { grid() };
    let tol = match inject {
        Some(scale) => Tolerances::default().scaled(scale),
        None => Tolerances::default(),
    };
    let card = run_grid(&specs, seed, threads, &tol);
    if !quiet {
        print!("{}", render(&card));
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                exit(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&out, card.to_json()) {
        eprintln!("cannot write {out}: {e}");
        exit(2);
    }
    if !quiet {
        println!("scorecard written to {out}");
    }
    exit(card.exit_code());
}
