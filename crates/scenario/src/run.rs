//! Drives one grid cell through the production ingestion path: a
//! [`ReplaySource`] feeding a [`MonitorRunner`]-wrapped monitor with the
//! method under test, reports collected from the event bus.

use std::net::{IpAddr, Ipv4Addr};
use std::sync::{Arc, Mutex};

use crate::model::VcaModels;
use crate::spec::{cell_seed, ScenarioKind, ScenarioSpec};
use crate::truth::{self, WindowTruth};
use vcaml::{
    EstimationMethod, EventSink, Method, MonitorBuilder, MonitorRunner, QoeEvent, ReplaySource,
    Trace, WindowReport,
};
use vcaml_netpkt::{CapturedPacket, FlowKey};
use vcaml_rtp::{PayloadMap, VcaKind};
use vcaml_vcasim::VcaProfile;

/// One cell's prepared traffic: ground truth plus the replay feed every
/// method observes identically.
pub struct Prepared {
    /// Per-window ground truth.
    pub truth: Vec<WindowTruth>,
    /// The VCA under test.
    pub vca: VcaKind,
    /// Payload map the monitor must parse RTP with.
    pub payload_map: PayloadMap,
    feed: Feed,
}

enum Feed {
    Captured(Vec<CapturedPacket>),
    Trace(Box<Trace>),
}

/// Builds the cell's traffic once (session or dataset trace, with any
/// tap-side perturbations applied), so all four methods score the same
/// packets.
pub fn prepare(spec: &ScenarioSpec, grid_seed: u64) -> Prepared {
    let seed = cell_seed(grid_seed, spec.name);
    match &spec.kind {
        ScenarioKind::Sim { build, perturb } => {
            let session = build(seed);
            let truth = truth::from_session(&session);
            let mut captured = session.to_captured();
            if !perturb.is_empty() {
                let timed: Vec<_> = captured.into_iter().map(|p| (p.ts, p.datagram)).collect();
                let shaped = vcaml_netem::Perturber::new(perturb.to_vec(), seed).apply(timed);
                captured = shaped
                    .into_iter()
                    .map(|(ts, datagram)| CapturedPacket { ts, datagram })
                    .collect();
            }
            Prepared {
                truth,
                vca: spec.vca,
                payload_map: VcaProfile::lab(spec.vca).payload_map,
                feed: Feed::Captured(captured),
            }
        }
        ScenarioKind::Dataset { build } => {
            let trace = build(seed);
            Prepared {
                truth: truth::from_trace(&trace),
                vca: spec.vca,
                payload_map: trace.payload_map,
                feed: Feed::Trace(Box::new(trace)),
            }
        }
    }
}

/// One window's estimate after method-specific decoding (heuristic
/// estimates or forest predictions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEst {
    /// Monitor window index.
    pub window: u64,
    /// Estimated frames per second.
    pub fps: f64,
    /// Estimated bitrate, kbps.
    pub bitrate_kbps: f64,
}

/// Collects finalized window reports off the event bus. Uses
/// `final_reports()` so every report is seen exactly once (steady-state
/// reports as they finalize, tail reports at eviction).
struct Collect(Arc<Mutex<Vec<WindowReport>>>);

impl EventSink for Collect {
    fn on_event(&mut self, event: &Arc<QoeEvent>) {
        let mut out = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for report in event.final_reports() {
            out.push(report.clone());
        }
    }
}

fn replay_flow_key() -> FlowKey {
    FlowKey::canonical(
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, 1)),
        1,
        IpAddr::V4(Ipv4Addr::new(127, 0, 0, 2)),
        2,
        17,
    )
    .0
}

/// Runs `method` over the prepared traffic through the production
/// `MonitorRunner` path and decodes per-window estimates.
pub fn run_method(
    prep: &Prepared,
    method: Method,
    models: &VcaModels,
    threads: usize,
) -> Vec<WindowEst> {
    let mut builder = MonitorBuilder::new(prep.vca)
        .method(EstimationMethod::Fixed(method))
        .payload_map(prep.payload_map)
        .threads(threads.max(1));
    if method.is_ml() {
        let fps_model = match method {
            Method::RtpMl => models.rtp_fps.clone(),
            Method::IpUdpMl => models.ipudp_fps.clone(),
            Method::RtpHeuristic | Method::IpUdpHeuristic => {
                unreachable!("is_ml() gated")
            }
        };
        builder = builder.model(fps_model);
    }

    let collected = Arc::new(Mutex::new(Vec::new()));
    let source = match &prep.feed {
        Feed::Captured(packets) => ReplaySource::from_captured(packets.clone()),
        Feed::Trace(trace) => ReplaySource::from_trace(trace, replay_flow_key()),
    };
    MonitorRunner::new(builder)
        .source(source)
        .sink(Collect(Arc::clone(&collected)))
        .run();

    let mut reports = match collected.lock() {
        Ok(mut g) => std::mem::take(&mut *g),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    };
    reports.sort_by_key(|r| r.window);

    reports
        .into_iter()
        .map(|r| {
            let (fps, bitrate_kbps) = if method.is_ml() {
                let fps = r.model_fps.unwrap_or(0.0).max(0.0);
                let bitrate = r
                    .features
                    .as_deref()
                    .map(|f| match method {
                        Method::RtpMl => models.rtp_bitrate.predict(f),
                        Method::IpUdpMl => models.ipudp_bitrate.predict(f),
                        Method::RtpHeuristic | Method::IpUdpHeuristic => 0.0,
                    })
                    .unwrap_or(0.0)
                    .max(0.0);
                (fps, bitrate)
            } else {
                r.estimate
                    .map_or((0.0, 0.0), |e| (e.fps.max(0.0), e.bitrate_kbps.max(0.0)))
            };
            WindowEst {
                window: r.window,
                fps,
                bitrate_kbps,
            }
        })
        .collect()
}
