//! Per-cell accuracy scoring and typed verdicts.

use crate::run::WindowEst;
use crate::truth::WindowTruth;
use vcaml::{Method, ResolutionScheme};
use vcaml_vcasim::VcaProfile;

/// Windows whose true bitrate is below this carry no meaningful
/// relative-error signal (startup, DTX, video-off) and are excluded
/// from the bitrate MRAE denominator.
pub const MIN_TRUTH_KBPS: f64 = 50.0;

/// How a cell (or one of its metrics) fared against the tolerances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within the pass tolerance.
    Pass,
    /// Outside pass but within the degraded tolerance — accuracy is
    /// visibly off yet the method still tracks the call.
    Degraded,
    /// Outside even the degraded tolerance: the estimate is unusable
    /// under this impairment.
    Fail,
}

impl Verdict {
    /// Scorecard string form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Degraded => "degraded",
            Verdict::Fail => "fail",
        }
    }

    /// Severity rank (higher is worse), for `--compare` deltas.
    pub fn rank(&self) -> u8 {
        match self {
            Verdict::Pass => 0,
            Verdict::Degraded => 1,
            Verdict::Fail => 2,
        }
    }

    /// Parses the string form back (for `--compare`).
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "pass" => Some(Verdict::Pass),
            "degraded" => Some(Verdict::Degraded),
            "fail" => Some(Verdict::Fail),
            _ => None,
        }
    }
}

/// Per-metric error tolerances (same units as the metrics: fps MAE in
/// frames/s, bitrate MRAE as a ratio, resolution accuracy as a
/// fraction).
///
/// Two scaling knobs widen the bands where wide bands are the *correct
/// expectation*, so `Fail` always means "worse than this method is
/// known to be here", never "the method has a documented weakness":
///
/// * [`Tolerances::ipudp_heur_fps_scale`] — the IP/UDP Heuristic
///   reconstructs frames from packet sizes alone and systematically
///   miscounts at high bitrates (the paper's motivation for the ML
///   variants); its fps bands are an order wider.
/// * a per-scenario `tol_scale` (see
///   [`ScenarioSpec`](crate::spec::ScenarioSpec)) — scenarios that are
///   out-of-distribution by construction (multiparty fan-in, real-world
///   payload maps) widen every band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// fps MAE at or below this passes.
    pub fps_pass: f64,
    /// fps MAE at or below this (but above pass) is degraded.
    pub fps_degraded: f64,
    /// Bitrate MRAE at or below this passes.
    pub mrae_pass: f64,
    /// Bitrate MRAE at or below this is degraded.
    pub mrae_degraded: f64,
    /// Resolution accuracy at or above this passes.
    pub res_pass: f64,
    /// Resolution accuracy at or above this is degraded.
    pub res_degraded: f64,
    /// Extra fps-band multiplier for the IP/UDP Heuristic.
    pub ipudp_heur_fps_scale: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            fps_pass: 4.0,
            fps_degraded: 12.0,
            mrae_pass: 0.45,
            mrae_degraded: 1.2,
            res_pass: 0.75,
            res_degraded: 0.3,
            ipudp_heur_fps_scale: 8.0,
        }
    }
}

impl Tolerances {
    /// Uniformly tightened (`scale < 1`) or loosened (`scale > 1`)
    /// bands — the `--inject-tolerance` self-test knob. Error bands
    /// multiply by `scale`, accuracy thresholds divide by it, so a
    /// small scale provably flips verdicts that pass under the real
    /// bands: CI uses this to prove the scorer and the compare gate
    /// still react, through the live scoring path instead of a
    /// hand-doctored scorecard.
    #[must_use]
    pub fn scaled(&self, scale: f64) -> Tolerances {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Tolerances {
            fps_pass: self.fps_pass * scale,
            fps_degraded: self.fps_degraded * scale,
            mrae_pass: self.mrae_pass * scale,
            mrae_degraded: self.mrae_degraded * scale,
            res_pass: self.res_pass / scale,
            res_degraded: self.res_degraded / scale,
            ipudp_heur_fps_scale: self.ipudp_heur_fps_scale,
        }
    }

    fn judge_error(value: f64, pass: f64, degraded: f64) -> Verdict {
        if value <= pass {
            Verdict::Pass
        } else if value <= degraded {
            Verdict::Degraded
        } else {
            Verdict::Fail
        }
    }

    fn judge_accuracy(value: f64, pass: f64, degraded: f64) -> Verdict {
        if value >= pass {
            Verdict::Pass
        } else if value >= degraded {
            Verdict::Degraded
        } else {
            Verdict::Fail
        }
    }
}

/// One scored grid cell: a scenario × method pair.
#[derive(Debug, Clone)]
pub struct CellScore {
    /// Scenario name.
    pub scenario: String,
    /// Estimation method.
    pub method: Method,
    /// Windows that were paired (truth row + estimate).
    pub windows: usize,
    /// Mean absolute fps error over all paired windows.
    pub fps_mae: f64,
    /// Mean relative bitrate error over windows with meaningful truth
    /// bitrate; `None` when no window qualified.
    pub bitrate_mrae: Option<f64>,
    /// Fraction of classifiable windows whose resolution class matched;
    /// `None` when the scheme or the call offered nothing to classify.
    pub res_acc: Option<f64>,
    /// fps verdict.
    pub fps_verdict: Verdict,
    /// Bitrate verdict (`None` mirrors `bitrate_mrae`).
    pub bitrate_verdict: Option<Verdict>,
    /// Resolution verdict (`None` mirrors `res_acc`).
    pub res_verdict: Option<Verdict>,
    /// Worst of the present per-metric verdicts.
    pub verdict: Verdict,
}

/// Scores one cell: pairs estimates with truth by window index and
/// reduces to the three metrics plus verdicts. `tol_scale` is the
/// scenario's difficulty multiplier (error bands widen by it, accuracy
/// thresholds shrink by it).
#[allow(clippy::too_many_arguments)]
pub fn score_cell(
    scenario: &str,
    method: Method,
    truth: &[WindowTruth],
    estimates: &[WindowEst],
    scheme: &ResolutionScheme,
    ladder: &VcaProfile,
    tol: &Tolerances,
    tol_scale: f64,
) -> CellScore {
    assert!(
        tol_scale.is_finite() && tol_scale >= 1.0,
        "tol_scale must be >= 1"
    );
    let mut fps_err = 0.0;
    let mut paired = 0usize;
    let mut rel_err = 0.0;
    let mut rel_n = 0usize;
    let mut res_hits = 0usize;
    let mut res_n = 0usize;

    for t in truth {
        let Some(est) = estimates.iter().find(|e| e.window == t.window) else {
            continue;
        };
        paired += 1;
        fps_err += (est.fps - t.fps).abs();
        if t.bitrate_kbps >= MIN_TRUTH_KBPS {
            rel_err += (est.bitrate_kbps - t.bitrate_kbps).abs() / t.bitrate_kbps;
            rel_n += 1;
        }
        if scheme.is_classifiable() {
            if let Some(truth_class) = scheme.class_of(t.height) {
                res_n += 1;
                let est_height = ladder.rung_for(est.bitrate_kbps).height;
                if scheme.class_of(est_height) == Some(truth_class) {
                    res_hits += 1;
                }
            }
        }
    }

    let fps_mae = if paired > 0 {
        fps_err / paired as f64
    } else {
        f64::INFINITY
    };
    let bitrate_mrae = (rel_n > 0).then(|| rel_err / rel_n as f64);
    let res_acc = (res_n > 0).then(|| res_hits as f64 / res_n as f64);

    let fps_scale = if method == Method::IpUdpHeuristic {
        tol_scale * tol.ipudp_heur_fps_scale
    } else {
        tol_scale
    };
    let fps_verdict = Tolerances::judge_error(
        fps_mae,
        tol.fps_pass * fps_scale,
        tol.fps_degraded * fps_scale,
    );
    let bitrate_verdict = bitrate_mrae.map(|m| {
        Tolerances::judge_error(m, tol.mrae_pass * tol_scale, tol.mrae_degraded * tol_scale)
    });
    let res_verdict = res_acc.map(|a| {
        Tolerances::judge_accuracy(a, tol.res_pass / tol_scale, tol.res_degraded / tol_scale)
    });
    let verdict = [Some(fps_verdict), bitrate_verdict, res_verdict]
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(Verdict::Fail);

    CellScore {
        scenario: scenario.to_string(),
        method,
        windows: paired,
        fps_mae,
        bitrate_mrae,
        res_acc,
        fps_verdict,
        bitrate_verdict,
        res_verdict,
        verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_rtp::VcaKind;

    fn truth_row(window: u64, fps: f64, kbps: f64, height: u32) -> WindowTruth {
        WindowTruth {
            window,
            fps,
            bitrate_kbps: kbps,
            height,
        }
    }

    fn est_row(window: u64, fps: f64, kbps: f64) -> WindowEst {
        WindowEst {
            window,
            fps,
            bitrate_kbps: kbps,
        }
    }

    #[test]
    fn perfect_estimates_pass() {
        let ladder = VcaProfile::lab(VcaKind::Teams);
        let scheme = ResolutionScheme::LowMediumHigh;
        let truth: Vec<_> = (0..10).map(|w| truth_row(w, 30.0, 2000.0, 540)).collect();
        let est: Vec<_> = (0..10).map(|w| est_row(w, 30.0, 2000.0)).collect();
        let c = score_cell(
            "t",
            Method::RtpHeuristic,
            &truth,
            &est,
            &scheme,
            &ladder,
            &Tolerances::default(),
            1.0,
        );
        assert_eq!(c.verdict, Verdict::Pass);
        assert_eq!(c.windows, 10);
        assert_eq!(c.fps_mae, 0.0);
        assert_eq!(c.bitrate_mrae, Some(0.0));
        assert_eq!(c.res_acc, Some(1.0));
    }

    #[test]
    fn injected_tolerance_flips_a_passing_cell() {
        // The same perfect estimates that pass above must fail once the
        // bands are tightened 20x: the accuracy threshold (0.75 / 0.05)
        // becomes unattainable, so even res_acc = 1.0 flips. This is
        // the property `--inject-tolerance` leans on in CI.
        let ladder = VcaProfile::lab(VcaKind::Teams);
        let scheme = ResolutionScheme::LowMediumHigh;
        let truth: Vec<_> = (0..10).map(|w| truth_row(w, 30.0, 2000.0, 540)).collect();
        let est: Vec<_> = (0..10).map(|w| est_row(w, 30.0, 2000.0)).collect();
        let c = score_cell(
            "t",
            Method::RtpHeuristic,
            &truth,
            &est,
            &scheme,
            &ladder,
            &Tolerances::default().scaled(0.05),
            1.0,
        );
        assert_eq!(c.verdict, Verdict::Fail);
        assert_eq!(c.fps_verdict, Verdict::Pass, "fps was genuinely perfect");
        assert_eq!(c.res_verdict, Some(Verdict::Fail));
    }

    #[test]
    fn wild_estimates_fail_and_dominate_the_cell_verdict() {
        let ladder = VcaProfile::lab(VcaKind::Teams);
        let scheme = ResolutionScheme::LowMediumHigh;
        let truth: Vec<_> = (0..10).map(|w| truth_row(w, 30.0, 2000.0, 540)).collect();
        let est: Vec<_> = (0..10).map(|w| est_row(w, 30.0, 6000.0)).collect();
        let c = score_cell(
            "t",
            Method::RtpHeuristic,
            &truth,
            &est,
            &scheme,
            &ladder,
            &Tolerances::default(),
            1.0,
        );
        assert_eq!(c.fps_verdict, Verdict::Pass);
        assert_eq!(c.bitrate_verdict, Some(Verdict::Fail));
        assert_eq!(c.verdict, Verdict::Fail);
    }

    #[test]
    fn low_truth_windows_do_not_enter_the_mrae() {
        let ladder = VcaProfile::lab(VcaKind::Teams);
        let scheme = ResolutionScheme::LowMediumHigh;
        // All windows below the truth-bitrate floor: MRAE is undefined.
        let truth: Vec<_> = (0..5).map(|w| truth_row(w, 0.0, 0.0, 0)).collect();
        let est: Vec<_> = (0..5).map(|w| est_row(w, 0.0, 10.0)).collect();
        let c = score_cell(
            "t",
            Method::IpUdpHeuristic,
            &truth,
            &est,
            &scheme,
            &ladder,
            &Tolerances::default(),
            1.0,
        );
        assert_eq!(c.bitrate_mrae, None);
        assert_eq!(c.res_acc, None);
        assert_eq!(c.verdict, Verdict::Pass);
    }

    #[test]
    fn verdict_ordering_matches_severity() {
        assert!(Verdict::Pass < Verdict::Degraded);
        assert!(Verdict::Degraded < Verdict::Fail);
        assert_eq!(Verdict::parse("degraded"), Some(Verdict::Degraded));
        assert_eq!(Verdict::parse("bogus"), None);
    }
}
