//! The impairment grid: which scenarios exist, how each one builds its
//! traffic, and which subset gates PRs.

use vcaml::Trace;
use vcaml_datasets::{inlab_corpus, realworld_corpus, sweep_value_corpus, CorpusConfig};
use vcaml_netem::{
    ConditionSchedule, ImpairmentDim, ImpairmentProfile, LinkConfig, Perturbation, SecondCondition,
};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{
    dtx_segment, merge_multiparty, Session, SessionConfig, SessionTrace, VcaProfile,
};

/// Call length (seconds) for the simulator-backed scenarios.
pub const SCENARIO_SECS: u32 = 20;

/// How a scenario produces the traffic the monitor observes.
pub enum ScenarioKind {
    /// A vcasim session replayed as captured wire packets, optionally
    /// run through tap-side [`Perturbation`] stages first.
    Sim {
        /// Builds the session from the cell seed.
        build: fn(u64) -> SessionTrace,
        /// Tap-side stages applied to the capture (seeded per cell).
        perturb: &'static [Perturbation],
    },
    /// A `crates/datasets` trace replayed through the parsed-packet
    /// ingestion path (carries its own payload map and truth rows).
    Dataset {
        /// Builds the trace from the cell seed.
        build: fn(u64) -> Trace,
    },
}

/// One row of the grid: a named impairment condition for one VCA.
pub struct ScenarioSpec {
    /// Stable scenario name (scorecard key, must never be renamed
    /// without updating the committed baseline).
    pub name: &'static str,
    /// The VCA whose profile generates the traffic.
    pub vca: VcaKind,
    /// Whether the cell is in the PR-time smoke subset.
    pub smoke: bool,
    /// Score resolution against the real-world ladder instead of the
    /// in-lab one (real-world dataset scenarios only).
    pub realworld_ladder: bool,
    /// Tolerance multiplier for scenarios that are out-of-distribution
    /// by construction (error bands widen by it, accuracy thresholds
    /// shrink by it); 1.0 for everything in-distribution.
    pub tol_scale: f64,
    /// Traffic construction.
    pub kind: ScenarioKind,
}

/// Derives the per-cell RNG seed from the grid seed and scenario name
/// (FNV-1a), so inserting or reordering scenarios never shifts the
/// randomness of existing ones.
pub fn cell_seed(grid_seed: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ grid_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn good() -> SecondCondition {
    SecondCondition {
        throughput_kbps: 5000.0,
        delay_ms: 20.0,
        jitter_ms: 1.0,
        loss_pct: 0.0,
    }
}

fn schedule(secs: u32, f: impl Fn(u32) -> SecondCondition) -> ConditionSchedule {
    ConditionSchedule::new((0..secs).map(f).collect())
}

fn sim(vca: VcaKind, sched: ConditionSchedule, seed: u64) -> SessionTrace {
    Session::new(SessionConfig {
        profile: VcaProfile::lab(vca),
        schedule: sched,
        duration_secs: SCENARIO_SECS,
        seed,
        link: LinkConfig::default(),
    })
    .run()
}

fn baseline(seed: u64) -> SessionTrace {
    sim(VcaKind::Teams, ConditionSchedule::constant(good()), seed)
}

fn burst_loss(seed: u64) -> SessionTrace {
    let sched = schedule(SCENARIO_SECS, |sec| {
        let mut c = good();
        if (8..12).contains(&sec) {
            c.loss_pct = 15.0;
        }
        c
    });
    sim(VcaKind::Teams, sched, seed)
}

fn jitter_spikes(seed: u64) -> SessionTrace {
    let sched = schedule(SCENARIO_SECS, |sec| {
        let mut c = good();
        if (5..8).contains(&sec) || (13..16).contains(&sec) {
            c.jitter_ms = 35.0;
        }
        c
    });
    sim(VcaKind::Teams, sched, seed)
}

fn bandwidth_drop(seed: u64) -> SessionTrace {
    let sched = schedule(SCENARIO_SECS, |sec| {
        let mut c = good();
        c.throughput_kbps = if (7..14).contains(&sec) {
            400.0
        } else {
            4000.0
        };
        c
    });
    sim(VcaKind::Teams, sched, seed)
}

fn resolution_switch(seed: u64) -> SessionTrace {
    let sched = schedule(SCENARIO_SECS, |sec| {
        let mut c = good();
        c.throughput_kbps = if (7..14).contains(&sec) {
            600.0
        } else {
            3000.0
        };
        c
    });
    sim(VcaKind::Teams, sched, seed)
}

fn dtx_silence(seed: u64) -> SessionTrace {
    let base = sim(VcaKind::Meet, ConditionSchedule::constant(good()), seed);
    dtx_segment(&base, 7, 14)
}

fn multiparty_sfu(seed: u64) -> SessionTrace {
    let participants: Vec<SessionTrace> = (0..3)
        .map(|i| {
            sim(
                VcaKind::Teams,
                ConditionSchedule::constant(good()),
                seed.wrapping_add(i * 0x1000_0001),
            )
        })
        .collect();
    merge_multiparty(&participants)
}

fn one_call(seed: u64) -> CorpusConfig {
    CorpusConfig::scenario_cell(SCENARIO_SECS, seed)
}

fn dataset_inlab(seed: u64) -> Trace {
    inlab_corpus(VcaKind::Teams, &one_call(seed)).remove(0)
}

fn dataset_realworld(seed: u64) -> Trace {
    realworld_corpus(VcaKind::Meet, &one_call(seed)).remove(0)
}

fn dataset_sweep_loss(seed: u64) -> Trace {
    let profile = ImpairmentProfile {
        dim: ImpairmentDim::PacketLoss,
        value: 10.0,
    };
    sweep_value_corpus(VcaKind::Teams, profile, 1, SCENARIO_SECS, seed).remove(0)
}

const NO_PERTURB: &[Perturbation] = &[];
const REORDER_STAGES: &[Perturbation] = &[Perturbation::Reorder {
    pct: 12.0,
    delay_ms: 25.0,
}];
const DUPLICATE_STAGES: &[Perturbation] = &[Perturbation::Duplicate {
    pct: 10.0,
    delay_ms: 2.0,
}];

fn sim_spec(
    name: &'static str,
    vca: VcaKind,
    smoke: bool,
    build: fn(u64) -> SessionTrace,
    perturb: &'static [Perturbation],
) -> ScenarioSpec {
    ScenarioSpec {
        name,
        vca,
        smoke,
        realworld_ladder: false,
        tol_scale: 1.0,
        kind: ScenarioKind::Sim { build, perturb },
    }
}

/// The full impairment grid, in scorecard emission order.
pub fn grid() -> Vec<ScenarioSpec> {
    vec![
        sim_spec("baseline", VcaKind::Teams, true, baseline, NO_PERTURB),
        sim_spec("burst_loss", VcaKind::Teams, true, burst_loss, NO_PERTURB),
        sim_spec(
            "jitter_spikes",
            VcaKind::Teams,
            false,
            jitter_spikes,
            NO_PERTURB,
        ),
        sim_spec(
            "bandwidth_drop",
            VcaKind::Teams,
            false,
            bandwidth_drop,
            NO_PERTURB,
        ),
        sim_spec(
            "resolution_switch",
            VcaKind::Teams,
            false,
            resolution_switch,
            NO_PERTURB,
        ),
        sim_spec(
            "reordering",
            VcaKind::Teams,
            false,
            baseline,
            REORDER_STAGES,
        ),
        sim_spec(
            "duplication",
            VcaKind::Teams,
            false,
            baseline,
            DUPLICATE_STAGES,
        ),
        sim_spec("dtx_silence", VcaKind::Meet, true, dtx_silence, NO_PERTURB),
        ScenarioSpec {
            // Three participants multiplexed on one flow: aggregate
            // truth is far outside the single-call training
            // distribution, and single-stream frame reconstruction is
            // expected to be coarse here (paper §7).
            tol_scale: 8.0,
            ..sim_spec(
                "multiparty_sfu",
                VcaKind::Teams,
                false,
                multiparty_sfu,
                NO_PERTURB,
            )
        },
        ScenarioSpec {
            name: "dataset_inlab",
            vca: VcaKind::Teams,
            smoke: false,
            realworld_ladder: false,
            tol_scale: 1.0,
            kind: ScenarioKind::Dataset {
                build: dataset_inlab,
            },
        },
        ScenarioSpec {
            // Real-world payload maps and a household ladder the lab
            // models never saw: resolution classes and ML bitrate are
            // expected to be coarse.
            name: "dataset_realworld",
            vca: VcaKind::Meet,
            smoke: false,
            realworld_ladder: true,
            tol_scale: 2.5,
            kind: ScenarioKind::Dataset {
                build: dataset_realworld,
            },
        },
        ScenarioSpec {
            name: "dataset_sweep_loss",
            vca: VcaKind::Teams,
            smoke: false,
            realworld_ladder: false,
            tol_scale: 1.0,
            kind: ScenarioKind::Dataset {
                build: dataset_sweep_loss,
            },
        },
    ]
}

/// The PR-time smoke subset of [`grid`].
pub fn smoke_grid() -> Vec<ScenarioSpec> {
    grid().into_iter().filter(|s| s.smoke).collect()
}
