//! Offline stand-in for `serde_json`: re-exports the shim `serde`'s value
//! tree, adds the `json!` constructor macro and a pretty printer. Only the
//! surface the bench harness uses is provided (`Value`, `Map`, `json!`,
//! [`to_string_pretty`]).

pub use serde::{Map, Value};

/// Error type kept for signature compatibility; serialization in the shim
/// cannot fail.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Appends to a [`Value`] array being built by `json!` (kept out of the
/// macro body so expansions avoid the `vec_init_then_push` lint pattern).
#[doc(hidden)]
pub fn push_value(array: &mut Vec<Value>, value: Value) {
    array.push(value);
}

/// Converts any shim-serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf; serde_json errors, we degrade
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a serializable value as JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Serializes a value as compact single-line JSON (the JSON-lines form).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Builds a [`Value`] from JSON-ish syntax, mirroring `serde_json::json!`.
///
/// Values may be nested object/array literals, `null`, or arbitrary Rust
/// expressions implementing the shim `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut array = Vec::new();
        $crate::json_internal!(@array array $($tt)*);
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object $($tt)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Token muncher behind [`json!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- array elements ----
    (@array $v:ident) => {};
    (@array $v:ident ,) => {};
    (@array $v:ident null $(, $($rest:tt)*)?) => {
        $crate::push_value(&mut $v, $crate::Value::Null);
        $crate::json_internal!(@array $v $($($rest)*)?);
    };
    (@array $v:ident { $($o:tt)* } $(, $($rest:tt)*)?) => {
        $crate::push_value(&mut $v, $crate::json!({ $($o)* }));
        $crate::json_internal!(@array $v $($($rest)*)?);
    };
    (@array $v:ident [ $($a:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::push_value(&mut $v, $crate::json!([ $($a)* ]));
        $crate::json_internal!(@array $v $($($rest)*)?);
    };
    (@array $v:ident $e:expr, $($rest:tt)*) => {
        $crate::push_value(&mut $v, $crate::to_value(&$e));
        $crate::json_internal!(@array $v $($rest)*);
    };
    (@array $v:ident $e:expr) => {
        $crate::push_value(&mut $v, $crate::to_value(&$e));
    };
    // ---- object entries ----
    (@object $m:ident) => {};
    (@object $m:ident ,) => {};
    (@object $m:ident $key:tt : null $(, $($rest:tt)*)?) => {
        $m.insert(($key).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:tt : { $($o:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert(($key).to_string(), $crate::json!({ $($o)* }));
        $crate::json_internal!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:tt : [ $($a:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert(($key).to_string(), $crate::json!([ $($a)* ]));
        $crate::json_internal!(@object $m $($($rest)*)?);
    };
    (@object $m:ident $key:tt : $e:expr, $($rest:tt)*) => {
        $m.insert(($key).to_string(), $crate::to_value(&$e));
        $crate::json_internal!(@object $m $($rest)*);
    };
    (@object $m:ident $key:tt : $e:expr) => {
        $m.insert(($key).to_string(), $crate::to_value(&$e));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested() {
        let v = json!({"a": 1, "b": [1.5, true, "x"], "c": {"d": null}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": ["));
        assert!(s.contains("1.5"));
        assert!(s.contains("\"d\": null"));
    }

    #[test]
    fn exprs_embed_via_serialize() {
        let xs = vec![(1.0f64, 0.5f64)];
        let v = json!({ "cdf": xs });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('['));
    }

    #[test]
    fn integers_render_without_decimal() {
        let mut out = String::new();
        write_number(30.0, &mut out);
        assert_eq!(out, "30");
    }

    #[test]
    fn compact_is_single_line() {
        let v = json!({"a": 1, "b": [1.5, true, "x"], "c": {"d": null}});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[1.5,true,"x"],"c":{"d":null}}"#);
    }
}
