//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! cheaply cloneable byte buffer backed by `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn slice_ops_via_deref() {
        let a = Bytes::from(vec![9, 8, 7]);
        assert_eq!(a[1], 8);
        assert_eq!(&a[1..], &[8, 7]);
    }
}
