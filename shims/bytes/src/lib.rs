//! Offline stand-in for the `bytes` crate: just [`Bytes`], an immutable,
//! cheaply cloneable byte buffer backed by `Arc<[u8]>` plus a view
//! window, so subslices ([`Bytes::slice`], [`Bytes::slice_ref`]) share
//! the parent's storage instead of copying.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte buffer (a window onto refcounted storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this buffer sharing the same storage — no copy.
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Zero-copy promotion of `subset` — a slice borrowed *from this
    /// buffer* (e.g. a parser's payload view) — back into an owned
    /// [`Bytes`] sharing this buffer's storage.
    ///
    /// Panics when `subset` does not lie within `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Self {
        if subset.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= base && sub + subset.len() <= base + self.len(),
            "slice_ref of a slice outside the buffer"
        );
        let lo = sub - base;
        self.slice(lo..lo + subset.len())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(v.into())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn slice_ops_via_deref() {
        let a = Bytes::from(vec![9, 8, 7]);
        assert_eq!(a[1], 8);
        assert_eq!(&a[1..], &[8, 7]);
    }

    #[test]
    fn slice_shares_storage_without_copy() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let b = a.slice(1..4);
        assert_eq!(&b[..], &[2, 3, 4]);
        let c = b.slice(1..);
        assert_eq!(&c[..], &[3, 4]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn slice_ref_promotes_borrowed_view() {
        let a = Bytes::from(vec![10, 20, 30, 40]);
        let view = &a[1..3];
        let b = a.slice_ref(view);
        assert_eq!(&b[..], &[20, 30]);
    }

    #[test]
    fn slice_ref_of_empty_is_empty() {
        let a = Bytes::from(vec![1, 2, 3]);
        assert!(a.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the buffer")]
    fn slice_ref_rejects_foreign_slice() {
        let a = Bytes::from(vec![1, 2, 3]);
        let other = [9u8, 9, 9];
        let _ = a.slice_ref(&other);
    }
}
