//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so this shim provides
//! exactly the surface the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` attributes (re-exported from the
//!   sibling `serde_derive` shim). Derived `Serialize` impls produce a
//!   field-by-field [`Value`] tree for plain named-field structs and
//!   `Value::Null` otherwise — enough for the JSON artifacts the bench
//!   harness writes.
//! * The [`Serialize`] trait, implemented for the primitives, strings,
//!   tuples, vectors, options, and maps that flow into
//!   `serde_json::to_string_pretty`.
//! * The [`Value`] tree itself, which the `serde_json` shim re-exports.
//!
//! `Deserialize` is a marker only: nothing in the workspace parses JSON.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::de::Deserialize`. Never invoked.
pub trait DeserializeOwned {}

/// A JSON document tree (the `serde_json::Value` this workspace sees).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy view).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map),
}

/// An insertion-ordered string-keyed map (mirrors `serde_json::Map`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key/value pair, replacing any previous value for the key.
    /// Takes `String` (not `impl Into<String>`) to match `serde_json::Map`,
    /// which call sites rely on for `.into()` inference.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The value-producing serialization trait this shim exposes.
///
/// Real serde drives a `Serializer`; here every serializable type simply
/// renders itself to a [`Value`] and the `serde_json` shim pretty-prints
/// that tree.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}
impl_serialize_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for std::net::IpAddr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

macro_rules! impl_value_from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        })*
    };
}
impl_value_from_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::Number(1.0)).is_none());
        assert_eq!(
            m.insert("a".into(), Value::Number(2.0)),
            Some(Value::Number(1.0))
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tuples_serialize_as_arrays() {
        let v = (1.0f64, 2.0f64).to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }
}
