//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! Backs [`rngs::StdRng`] with xoshiro256++ seeded via SplitMix64 — a
//! high-quality, deterministic generator. Implements exactly the surface
//! the workspace consumes: `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! Determinism is the only contract callers rely on (corpus generation and
//! forest training are seeded); the streams differ from upstream `rand`.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`hi_inclusive = false`) or
    /// `[lo, hi]` (`hi_inclusive = true`).
    fn sample_between<R: Rng + ?Sized>(lo: Self, hi: Self, hi_inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                lo: Self,
                hi: Self,
                hi_inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(hi_inclusive);
                assert!(span > 0, "empty range in gen_range");
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng + ?Sized>(
        lo: Self,
        hi: Self,
        hi_inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let unit = if hi_inclusive {
            (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        } else {
            f64::sample(rng)
        };
        lo + unit * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
///
/// The single blanket impl per range shape (matching upstream rand) is what
/// lets integer literals in `rng.gen_range(5..40)` unify with the consuming
/// type instead of defaulting to `i32`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

pub mod rngs {
    //! Concrete generators (`StdRng` only).
    use super::{Rng, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding; deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom::shuffle` only).
    use super::Rng;

    /// Mirror of `rand::seq::SliceRandom` for the methods used here.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&x));
            let n: usize = r.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: u32 = r.gen_range(5..=8);
            assert!((5..=8).contains(&m));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
