//! Offline stand-in for `proptest`.
//!
//! Provides randomized (non-shrinking) property tests with the same
//! syntax the workspace uses: the [`proptest!`] macro over `arg in
//! strategy` bindings, `any::<T>()`, numeric-range strategies,
//! `proptest::collection::vec`, tuple strategies, and the
//! `prop_assert*` macros. Each property runs a fixed number of cases
//! from a deterministic seed; failures report the case index but are
//! not shrunk.

use rand::prelude::*;

/// Error carried out of a failing property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Number of random cases per property.
pub const DEFAULT_CASES: usize = 96;

/// A value generator (no shrinking).
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl<const N: usize> Strategy for Any<[u8; N]> {
    type Value = [u8; N];
    fn sample(&self, rng: &mut StdRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod collection {
    //! Collection strategies (`vec` only).
    use super::*;

    /// Strategy producing `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Length specification for [`vec()`].
    pub trait SizeRange {
        /// Returns `(min, max_exclusive)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// `proptest::collection::vec(element, size)` equivalent.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs one property over [`DEFAULT_CASES`] deterministic cases.
pub fn run_property<F: FnMut(&mut StdRng) -> TestCaseResult>(name: &str, mut body: F) {
    for case in 0..DEFAULT_CASES {
        // Deterministic per-test stream: hash the name with the case index.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37));
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!("property '{name}' failed at case {case}: {msg}"); // lint: allow(no-unwrap-in-lib) -- property failure must abort the run; mirrors upstream proptest
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            $crate::run_property(stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError(format!(
                "{} != {} ({lhs:?} vs {rhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError(format!(
                "{} == {} ({lhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Strategy, TestCaseError, TestCaseResult};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u32..20, y in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_compose(p in (0usize..3, 0usize..3)) {
            prop_assert!(p.0 < 3 && p.1 < 3);
        }
    }
}
