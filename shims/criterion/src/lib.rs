//! Offline stand-in for `criterion`.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — as a simple wall-clock harness: each
//! benchmark is warmed up, then timed over enough iterations to cover a
//! minimum measurement window, and the median per-iteration time plus
//! derived throughput is printed. No statistics or plots; a minimal
//! machine-readable baseline is available on request: set
//! `VCAML_BENCH_JSON=<path>` and `criterion_main!` writes every
//! measurement of the run as one JSON document (see [`Measurement`]),
//! which CI uses to track packets/sec trajectories across commits.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One recorded benchmark result, as serialized to `VCAML_BENCH_JSON`.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median wall-clock time per iteration, nanoseconds.
    pub ns_per_iter: u128,
    /// Elements (or bytes) per second, when the group declared a
    /// throughput; `None` otherwise.
    pub rate_per_sec: Option<f64>,
    /// Unit of `rate_per_sec`: `"elements"` or `"bytes"`.
    pub rate_unit: Option<&'static str>,
}

/// Results of every `bench_function` run in this process, in run order.
static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

fn record(m: Measurement) {
    MEASUREMENTS.lock().expect("measurements poisoned").push(m); // lint: allow(no-unwrap-in-lib) -- poisoned registry lock means a bench already panicked; escalate
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes every measurement of the run to the path in
/// `VCAML_BENCH_JSON`, if set. Called by `criterion_main!` after all
/// groups finish; benches running under the real criterion crate simply
/// never see the variable.
pub fn write_json_results() {
    let Ok(path) = std::env::var("VCAML_BENCH_JSON") else {
        return;
    };
    let measurements = MEASUREMENTS.lock().expect("measurements poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned registry lock means a bench already panicked; escalate
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    // Cores matter for interpreting parallel-vs-serial entries: a
    // 1-core machine cannot show a threading win, so trajectory tooling
    // must compare like with like.
    let mut out = format!("{{\n\"cores\": {cores},\n\"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"group\":\"{}\",\"id\":\"{}\",\"ns_per_iter\":{}",
            json_escape(&m.group),
            json_escape(&m.id),
            m.ns_per_iter
        ));
        if let (Some(rate), Some(unit)) = (m.rate_per_sec, m.rate_unit) {
            out.push_str(&format!(
                ",\"rate_per_sec\":{rate:.1},\"rate_unit\":\"{unit}\""
            ));
        }
        out.push('}');
    }
    out.push_str("\n]\n}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                // lint: allow(no-unwrap-in-lib) -- vendored shim mirrors upstream criterion, which aborts on bench IO errors
                .unwrap_or_else(|e| panic!("cannot create bench JSON dir {parent:?}: {e}"));
        }
    }
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("cannot write bench JSON to {path}: {e}")); // lint: allow(no-unwrap-in-lib) -- vendored shim mirrors upstream criterion, which aborts on bench IO errors
    eprintln!("wrote {} bench measurements to {path}", measurements.len());
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim ignores it.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// One setup per measurement batch.
    PerIteration,
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            measured: Vec::new(),
        }
    }

    /// Times `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: find an iteration count that runs ≥ ~5 ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.measured.push(t0.elapsed() / iters as u32);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples.max(3) {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.measured.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        assert!(!self.measured.is_empty(), "bencher closure never ran");
        self.measured.sort();
        self.measured[self.measured.len() / 2]
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let per_iter = b.median();
        let ns = per_iter.as_nanos().max(1);
        let (rate, rate_per_sec, rate_unit) = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / per_iter.as_secs_f64();
                (
                    format!("  {:>10.1} MiB/s", per_sec / (1 << 20) as f64),
                    Some(per_sec),
                    Some("bytes"),
                )
            }
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / per_iter.as_secs_f64();
                (
                    format!("  {per_sec:>12.0} elem/s"),
                    Some(per_sec),
                    Some("elements"),
                )
            }
            None => (String::new(), None, None),
        };
        println!("{}/{id:<36} {ns:>12} ns/iter{rate}", self.name);
        record(Measurement {
            group: self.name.clone(),
            id: id.to_string(),
            ns_per_iter: ns,
            rate_per_sec,
            rate_unit,
        });
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. After every
/// group runs, the measurements are written to `VCAML_BENCH_JSON` when
/// that variable is set (a shim extension the real criterion ignores).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::new(3);
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.median() < Duration::from_secs(1));
    }
}
