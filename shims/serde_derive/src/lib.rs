//! Derive macros for the in-repo `serde` shim.
//!
//! `#[derive(Serialize)]` emits a field-by-field `serde::Serialize` impl
//! for plain (non-generic) named-field structs and a `Value::Null` impl
//! otherwise; `#[derive(Deserialize)]` emits nothing (no code in the
//! workspace deserializes). Hand-rolled token scanning keeps this shim
//! free of `syn`/`quote`, which are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(is_struct, type_name, is_generic, body_group)`.
fn parse_item(input: TokenStream) -> Option<(bool, String, bool, Option<TokenStream>)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return None,
                };
                let mut generic = false;
                let mut body = None;
                for tt in iter {
                    match &tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => generic = true,
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            body = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => break,
                        _ => {}
                    }
                }
                return Some((kw == "struct", name, generic, body));
            }
        }
    }
    None
}

/// Collects named-field identifiers from a struct body: idents directly
/// followed by `:` where the preceding token is not `:` (path segments)
/// and we are outside any nested group.
fn field_names(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Ident(id) if angle_depth == 0 => {
                let followed_by_colon = matches!(
                    tokens.get(i + 1),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':'
                        && p.spacing() == proc_macro::Spacing::Alone
                );
                let preceded_ok = match i.checked_sub(1).map(|j| &tokens[j]) {
                    None => true,
                    Some(TokenTree::Punct(p)) => p.as_char() == ',',
                    Some(TokenTree::Ident(prev)) => prev.to_string() == "pub",
                    Some(TokenTree::Group(_)) => true, // after an attribute or pub(...)
                    _ => false,
                };
                if followed_by_colon && preceded_ok {
                    fields.push(id.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    fields
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Some((is_struct, name, generic, body)) = parse_item(input) else {
        return TokenStream::new();
    };
    if generic {
        return TokenStream::new();
    }
    let body_src = if is_struct {
        match body.as_ref().map(field_names) {
            Some(fields) if !fields.is_empty() => {
                let mut s = String::from("let mut m = serde::Map::new();");
                for f in fields {
                    s.push_str(&format!(
                        "m.insert(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}));"
                    ));
                }
                s.push_str("serde::Value::Object(m)");
                s
            }
            _ => String::from("serde::Value::Null"),
        }
    } else {
        // Enums render as their Debug name: good enough for artifacts.
        String::from("serde::Value::String(format!(\"{:?}\", self))")
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body_src} }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses") // lint: allow(no-unwrap-in-lib) -- proc-macro output comes from a fixed template; parse failure is a shim bug
}

/// Derives nothing: the workspace never deserializes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
