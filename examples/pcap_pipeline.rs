//! Wire-format round trip: export a simulated call as a standard libpcap
//! file (openable in Wireshark/tcpdump), read it back, re-parse every
//! packet from raw bytes, and run the QoE pipeline on the re-parsed trace
//! — demonstrating that the estimator consumes nothing beyond what a
//! packet capture contains.
//!
//! ```sh
//! cargo run --release --example pcap_pipeline
//! ```

use std::io::Cursor;
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::netpkt::{
    EtherType, EthernetFrame, EthernetRepr, Ipv4Repr, LinkType, MacAddr, PcapReader, PcapWriter,
    UdpDatagram, UdpRepr,
};
use vcaml_suite::rtp::{RtpHeader, VcaKind};
use vcaml_suite::vcaml::{
    EngineConfig, IpUdpHeuristicEngine, MediaClassifier, QoeEstimator, TracePacket,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    // 1. Simulate a call and materialize wire bytes.
    let profile = VcaProfile::lab(VcaKind::Webex);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(7, 20),
        duration_secs: 20,
        seed: 7,
        link: LinkConfig::default(),
    })
    .run();
    let captured = session.to_captured();

    // 2. Write a classic pcap with full Ethernet/IPv4/UDP framing.
    let mut writer = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("pcap header");
    let eth = EthernetRepr {
        src: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
        dst: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
        ethertype: EtherType::Ipv4,
    };
    for cap in &captured {
        let payload = &cap.datagram.payload;
        let mut frame = vec![0u8; 14 + 20 + 8 + payload.len()];
        eth.emit(&mut frame);
        Ipv4Repr {
            src: [203, 0, 113, 10],
            dst: [192, 168, 1, 100],
            protocol: vcaml_suite::netpkt::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            ttl: 58,
            ident: 0,
        }
        .emit(&mut frame[14..]);
        frame[42..].copy_from_slice(payload);
        UdpRepr {
            src_port: cap.datagram.src_port,
            dst_port: cap.datagram.dst_port,
        }
        .emit_v4(
            &mut frame[34..],
            payload.len(),
            [203, 0, 113, 10],
            [192, 168, 1, 100],
        );
        writer.write_packet(cap.ts, &frame).expect("write record");
    }
    let pcap_bytes = writer.finish().expect("flush");
    std::fs::write("webex_call.pcap", &pcap_bytes).expect("write file");
    println!(
        "wrote webex_call.pcap: {} packets, {} bytes",
        captured.len(),
        pcap_bytes.len()
    );

    // 3. Read it back, re-parse from raw bytes only, and stream each
    //    packet straight into the unified engine — the exact loop a
    //    monitor runs on a live tap.
    let mut reader = PcapReader::new(Cursor::new(pcap_bytes)).expect("pcap header");
    let mut engine = IpUdpHeuristicEngine::new(EngineConfig::paper(VcaKind::Webex));
    let classifier = MediaClassifier::default();
    let mut reports = Vec::new();
    let mut n_rtp = 0usize;
    let mut n_video = 0usize;
    while let Some(rec) = reader.next_record().expect("read record") {
        let frame = EthernetFrame::new_checked(&rec.data[..]).expect("ethernet");
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        let Some(dg) = UdpDatagram::parse(&rec.data).expect("udp parse") else {
            continue;
        };
        if RtpHeader::parse(&dg.payload).is_ok() {
            n_rtp += 1;
        }
        if dg.ip_total_len >= classifier.vmin {
            n_video += 1;
        }
        // The monitor's view: timestamp + IP total length.
        reports.extend(engine.push(&TracePacket {
            ts: rec.ts,
            size: dg.ip_total_len,
            rtp: None,
            truth_media: None,
        }));
    }
    reports.extend(engine.finish());
    println!("re-parsed: {n_rtp} RTP packets, {n_video} video-classified");

    // 4. Per-window QoE straight off the re-parsed capture.
    println!("\n  t   FPS  kbps");
    for r in &reports {
        let e = r.estimate.expect("heuristic engine reports estimates");
        println!("{:>3}  {:>4.0}  {:>5.0}", r.window, e.fps, e.bitrate_kbps);
    }
    std::fs::remove_file("webex_call.pcap").ok();
}
