//! Wire-format round trip: export a simulated call as a standard libpcap
//! file (openable in Wireshark/tcpdump), then read it back through a
//! `PcapFileSource` driving a `MonitorRunner` — demonstrating that the
//! estimator consumes nothing beyond what a packet capture contains, and
//! that malformed records are classified instead of crashing the monitor.
//!
//! ```sh
//! cargo run --release --example pcap_pipeline
//! ```

use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::netpkt::{
    EtherType, EthernetRepr, Ipv4Repr, LinkType, MacAddr, PcapWriter, Timestamp, UdpRepr,
};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    ChannelSink, EstimationMethod, Method, MonitorBuilder, MonitorRunner, PcapFileSource, QoeEvent,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    // 1. Simulate a call and materialize wire bytes.
    let profile = VcaProfile::lab(VcaKind::Webex);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(7, 20),
        duration_secs: 20,
        seed: 7,
        link: LinkConfig::default(),
    })
    .run();
    let captured = session.to_captured();

    // 2. Write a classic pcap with full Ethernet/IPv4/UDP framing.
    let mut writer = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("pcap header");
    let eth = EthernetRepr {
        src: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
        dst: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
        ethertype: EtherType::Ipv4,
    };
    for cap in &captured {
        let payload = &cap.datagram.payload;
        let mut frame = vec![0u8; 14 + 20 + 8 + payload.len()];
        eth.emit(&mut frame);
        Ipv4Repr {
            src: [203, 0, 113, 10],
            dst: [192, 168, 1, 100],
            protocol: vcaml_suite::netpkt::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            ttl: 58,
            ident: 0,
        }
        .emit(&mut frame[14..]);
        frame[42..].copy_from_slice(payload);
        UdpRepr {
            src_port: cap.datagram.src_port,
            dst_port: cap.datagram.dst_port,
        }
        .emit_v4(
            &mut frame[34..],
            payload.len(),
            [203, 0, 113, 10],
            [192, 168, 1, 100],
        );
        writer.write_packet(cap.ts, &frame).expect("write record");
    }
    // A deliberately truncated record: real captures contain garbage, and
    // the monitor must classify it rather than fall over.
    writer
        .write_packet(Timestamp::from_secs(21), &[0x02, 0x00, 0x00])
        .expect("write runt record");
    let pcap_bytes = writer.finish().expect("flush");
    std::fs::write("webex_call.pcap", &pcap_bytes).expect("write file");
    println!(
        "wrote webex_call.pcap: {} packets, {} bytes",
        captured.len() + 1,
        pcap_bytes.len()
    );

    // 3. Read it back through the I/O layer: a `PcapFileSource` yields
    //    the raw records, the monitor does the layered eth→ip→udp parse
    //    and the RTP parse-attempt, and a bounded channel subscriber
    //    receives the typed events (shared `Arc`s — no event is ever
    //    deep-copied on its way out) — the exact pipeline a live tap
    //    runs. `spawn()` supervises the run on a background thread.
    let (subscriber, rx) = ChannelSink::bounded(1 << 16);
    let running = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Webex).method(EstimationMethod::Fixed(Method::IpUdpHeuristic)),
    )
    .source(PcapFileSource::open("webex_call.pcap").expect("reopen capture"))
    .sink(subscriber)
    .spawn();
    let report = running.join();
    println!(
        "re-parsed {} packets ({} classified drops)",
        report.stats.packets, report.stats.parse_drops
    );

    // 4. Per-window QoE straight off the re-parsed capture.
    println!("\n  t   FPS  kbps");
    for event in rx.try_iter() {
        if let QoeEvent::ParseDrop { ts, reason } = &*event {
            println!(
                "  (dropped record at t={}s: {:?})",
                ts.as_secs_f64(),
                reason
            );
            continue;
        }
        for r in event.final_reports() {
            let e = r.estimate.expect("heuristic reports carry estimates");
            println!("{:>3}  {:>4.0}  {:>5.0}", r.window, e.fps, e.bitrate_kbps);
        }
    }
    std::fs::remove_file("webex_call.pcap").ok();
}
