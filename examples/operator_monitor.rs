//! The paper's motivating scenario: a network operator monitoring VCA QoE
//! for many households *without* RTP access.
//!
//! Trains an IP/UDP-ML model on lab data once, then watches a fleet of
//! real-world calls through the crate's I/O layer: the fleet is split
//! across **two taps** (two `ReplaySource`s — say, two aggregation
//! links), a spawned `MonitorRunner` ingests both on their own threads
//! into one sharded monitor, and the merged event stream fans out on
//! the event bus — an unfiltered rollup consumer plus a min-severity
//! subscription that sees *only* operationally interesting events
//! (degraded windows below the live alert bar, shed markers) — while a
//! `MonitorHandle` watches the run live: the "diagnose and react to
//! QoE degradation" loop of §1.
//!
//! ```sh
//! cargo run --release --example operator_monitor
//! ```

// Example code: fail fast keeps the walkthrough readable.
#![allow(clippy::unwrap_used)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, TcpStream};
use std::sync::{Arc, Mutex};
use vcaml_suite::datasets::{inlab_corpus, realworld_corpus, CorpusConfig};
use vcaml_suite::mlcore::{Dataset, RandomForest, Task};
use vcaml_suite::netpkt::{FlowKey, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::daemon::{BoundControl, ControlEndpoint, Daemon, DaemonConfig};
use vcaml_suite::vcaml::{
    build_samples, CallbackSink, EstimationMethod, EventFilter, Method, MonitorBuilder,
    MonitorRunner, PipelineOpts, ReplaySource, Severity, TracePacket,
};
use vcaml_suite::vcasim::VcaProfile;

fn main() {
    let vca = VcaKind::Meet;
    let opts = PipelineOpts::paper(vca);

    // --- Offline: train on the lab corpus (the operator's one-time cost).
    println!("training IP/UDP ML frame-rate model on lab data...");
    let lab = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 12,
            min_secs: 30,
            max_secs: 45,
            seed: 1,
        },
    );
    let lab_set = build_samples(&lab, &opts);
    let mut train = Dataset::new(lab_set.ipudp_names.clone());
    for s in &lab_set.samples {
        train.push(&s.ipudp_features, s.truth.fps);
    }
    let model = RandomForest::fit(&train, Task::Regression, &opts.forest);
    println!(
        "model: {} trees on {} windows",
        model.n_trees(),
        train.len()
    );

    // --- Online: a fleet of concurrent calls, one flow per household,
    // demuxed by the canonical UDP 5-tuple. Each household hangs off one
    // of two taps; a tap delivers its packets in arrival order.
    let profiles = realworld_corpus(
        vca,
        &CorpusConfig {
            n_calls: 15,
            min_secs: 15,
            max_secs: 25,
            seed: 7,
        },
    );
    let mut taps: Vec<Vec<(FlowKey, TracePacket)>> = vec![Vec::new(), Vec::new()];
    let mut key_of_call = Vec::new();
    for (call, trace) in profiles.iter().enumerate() {
        let client = IpAddr::V4(Ipv4Addr::new(
            10,
            0,
            (call / 250) as u8,
            (call % 250) as u8 + 1,
        ));
        let relay = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 10));
        let (key, _) = FlowKey::canonical(relay, 3478, client, 50_000 + call as u16, 17);
        key_of_call.push(key);
        taps[call % 2].extend(trace.packets.iter().map(|p| (key, *p)));
    }
    for tap in &mut taps {
        tap.sort_by_key(|(_, p)| p.ts);
    }

    // Four shard workers split the fleet's engines; two ingest threads
    // (one per tap source) split the parse+hash dispatch that used to be
    // the serial section. The bounded event queue applies backpressure
    // instead of growing without limit if this consumer falls behind.
    //
    // Two bus subscriptions share every event allocation: an unfiltered
    // rollup of inferred frame rates, and a min-severity subscription
    // that only ever sees windows below the live alert bar (classified
    // once on the drain thread — the filtered subscriber pays nothing
    // for healthy traffic).
    let inferred: Arc<Mutex<HashMap<FlowKey, Vec<f64>>>> = Arc::default();
    let collected = Arc::clone(&inferred);
    let degraded_windows = Arc::new(Mutex::new(0u64));
    let degraded_counter = Arc::clone(&degraded_windows);
    let mut runner = MonitorRunner::new(
        MonitorBuilder::new(vca)
            .method(EstimationMethod::Fixed(Method::IpUdpMl))
            .model(model.clone())
            .shards(8)
            .threads(4)
            .queue_capacity(16_384)
            .idle_timeout(Timestamp::from_secs(30)),
    )
    .sink(CallbackSink::new(move |event| {
        let Some(flow) = event.flow() else { return };
        for report in event.final_reports() {
            if let Some(fps) = report.model_fps {
                collected.lock().unwrap().entry(flow).or_default().push(fps);
            }
        }
    }))
    .subscribe(
        EventFilter::all().min_severity(Severity::Warning),
        CallbackSink::new(move |_| *degraded_counter.lock().unwrap() += 1),
    );
    // The alert bar the severity classification uses, tunable live.
    let handle = runner.handle();
    handle.set_alert_fps(20.0);
    for tap in taps {
        runner = runner.source(ReplaySource::from_packets(tap));
    }

    // The operational surface a real deployment would expose: an
    // OpenMetrics exporter for the Prometheus scrape loop and a
    // line-protocol control socket for the on-call operator. Ephemeral
    // ports so the example never collides with a real deployment.
    let daemon = Daemon::start(
        handle.clone(),
        runner.bus_handle(),
        DaemonConfig::new()
            .ladder(VcaProfile::lab(vca))
            .metrics_addr("127.0.0.1:0")
            .control(ControlEndpoint::Tcp("127.0.0.1:0".into())),
    )
    .unwrap();

    let report = runner.spawn().join();
    let snapshot = handle.stats_snapshot();

    // Scrape the exporter exactly as Prometheus would.
    let metrics_addr = daemon.metrics_addr().unwrap();
    let mut scrape = TcpStream::connect(metrics_addr).unwrap();
    scrape.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    scrape.read_to_string(&mut body).unwrap();
    let families = body.lines().filter(|l| l.starts_with("# TYPE")).count();
    let packets_line = body
        .lines()
        .find(|l| l.starts_with("vcaml_packets_total "))
        .unwrap();
    println!("\nscraped http://{metrics_addr}/metrics ({families} metric families)");
    println!("  {packets_line}");

    // Drive the control socket: raise the alert bar live, then read the
    // monitor's own snapshot back over the wire.
    let Some(BoundControl::Tcp(control_addr)) = daemon.control_addr() else {
        unreachable!("daemon was configured with a TCP control endpoint");
    };
    let mut control = BufReader::new(TcpStream::connect(control_addr).unwrap());
    control
        .get_mut()
        .write_all(b"SET alert_fps 22\nSTATS\n")
        .unwrap();
    let mut reply = String::new();
    control.read_line(&mut reply).unwrap();
    println!("control SET alert_fps 22 -> {}", reply.trim_end());
    reply.clear();
    control.read_line(&mut reply).unwrap();
    println!(
        "control STATS -> {} byte snapshot (same serializer as --stats-every)",
        reply.trim_end().len()
    );
    drop(control);
    daemon.shutdown();

    println!(
        "\ndemuxed {} packets from {} taps into {} flows across 4 shard workers",
        report.stats.packets,
        report.sources.len(),
        report.stats.flows_opened
    );
    println!(
        "{} events below the {} fps alert bar reached the severity-filtered subscriber",
        degraded_windows.lock().unwrap(),
        handle.alert_fps().unwrap_or_default()
    );
    println!(
        "final snapshot: {} flows live, {} events pending, shard depths {:?}",
        snapshot.flows_live, snapshot.pending_events, snapshot.shard_depths
    );
    println!("\ncall  windows  inferred FPS (mean)  true FPS (mean)  verdict");
    let inferred = inferred.lock().unwrap();
    let mut degraded = 0;
    for (call, trace) in profiles.iter().enumerate() {
        let Some(preds) = inferred.get(&key_of_call[call]) else {
            continue;
        };
        let mean: f64 = preds.iter().sum::<f64>() / preds.len() as f64;
        let truth: f64 =
            trace.truth.iter().map(|t| t.fps).sum::<f64>() / trace.truth.len().max(1) as f64;
        let verdict = if mean < 20.0 {
            degraded += 1;
            "DEGRADED — investigate access link"
        } else {
            "ok"
        };
        println!(
            "{call:>4}  {:>7}  {:>19.1}  {:>15.1}  {verdict}",
            preds.len(),
            mean,
            truth
        );
    }
    println!("\n{degraded}/{} calls flagged as degraded", profiles.len());

    // What the model keys on — without ever reading an RTP header.
    println!("\ntop features:");
    for (name, imp) in model.top_features(5) {
        println!("  {name:<16} {:.1}%", imp * 100.0);
    }
}
