//! The paper's motivating scenario: a network operator monitoring VCA QoE
//! for many households *without* RTP access.
//!
//! Trains an IP/UDP-ML model on lab data once, then watches a fleet of
//! real-world calls and raises alerts when the inferred frame rate drops —
//! the "diagnose and react to QoE degradation" loop of §1.
//!
//! ```sh
//! cargo run --release --example operator_monitor
//! ```

use vcaml_suite::datasets::{inlab_corpus, realworld_corpus, CorpusConfig};
use vcaml_suite::mlcore::{Dataset, RandomForest, Task};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{build_samples, PipelineOpts};

fn main() {
    let vca = VcaKind::Meet;
    let opts = PipelineOpts::paper(vca);

    // --- Offline: train on the lab corpus (the operator's one-time cost).
    println!("training IP/UDP ML frame-rate model on lab data...");
    let lab = inlab_corpus(vca, &CorpusConfig { n_calls: 12, min_secs: 30, max_secs: 45, seed: 1 });
    let lab_set = build_samples(&lab, &opts);
    let mut train = Dataset::new(lab_set.ipudp_names.clone());
    for s in &lab_set.samples {
        train.push(&s.ipudp_features, s.truth.fps);
    }
    let model = RandomForest::fit(&train, Task::Regression, &opts.forest);
    println!("model: {} trees on {} windows", model.n_trees(), train.len());

    // --- Online: watch real-world calls, alert on sustained low FPS.
    let calls =
        realworld_corpus(vca, &CorpusConfig { n_calls: 15, min_secs: 15, max_secs: 25, seed: 7 });
    let rw_set = build_samples(&calls, &opts);

    println!("\ncall  windows  inferred FPS (mean)  true FPS (mean)  verdict");
    let mut degraded = 0;
    for call_id in 0..calls.len() {
        let windows: Vec<_> =
            rw_set.samples.iter().filter(|s| s.trace_id == call_id).collect();
        if windows.is_empty() {
            continue;
        }
        let inferred: f64 = windows.iter().map(|s| model.predict(&s.ipudp_features)).sum::<f64>()
            / windows.len() as f64;
        let truth: f64 =
            windows.iter().map(|s| s.truth.fps).sum::<f64>() / windows.len() as f64;
        let verdict = if inferred < 20.0 {
            degraded += 1;
            "DEGRADED — investigate access link"
        } else {
            "ok"
        };
        println!(
            "{call_id:>4}  {:>7}  {:>19.1}  {:>15.1}  {verdict}",
            windows.len(),
            inferred,
            truth
        );
    }
    println!("\n{degraded}/{} calls flagged as degraded", calls.len());

    // What the model keys on — without ever reading an RTP header.
    println!("\ntop features:");
    for (name, imp) in model.top_features(5) {
        println!("  {name:<16} {:.1}%", imp * 100.0);
    }
}
