//! Side-by-side comparison of all four methods (the paper's Fig. 3 for a
//! fresh corpus): IP/UDP Heuristic, IP/UDP ML, RTP Heuristic, RTP ML,
//! cross-validated on an in-lab Webex corpus.
//!
//! `build_samples` streams every trace through a `vcaml::source::ReplaySource`
//! into engines built by the `vcaml::api` facade — the batch evaluation
//! and a live monitor share one feed path and one construction path, so
//! their windows cannot drift apart.
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::mlcore::{mae, mrae};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    build_samples, eval_heuristic, eval_ml_regression, Method, PipelineOpts, Target,
};

fn main() {
    let vca = VcaKind::Webex;
    let opts = PipelineOpts::paper(vca);
    println!("generating in-lab {vca} corpus...");
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 10,
            min_secs: 30,
            max_secs: 50,
            seed: 3,
        },
    );
    let set = build_samples(&traces, &opts);
    println!(
        "{} windows from {} calls\n",
        set.samples.len(),
        traces.len()
    );

    println!(
        "{:<18} {:>14} {:>14} {:>16}",
        "Method", "FPS MAE", "Bitrate MRAE", "Jitter MAE [ms]"
    );
    for method in Method::ALL {
        let run = |target| {
            if method.is_ml() {
                eval_ml_regression(&set, method, target, &opts)
            } else {
                eval_heuristic(&set, method, target)
            }
        };
        let (fp, ft) = run(Target::FrameRate);
        let (bp, bt) = run(Target::Bitrate);
        let (jp, jt) = run(Target::FrameJitter);
        println!(
            "{:<18} {:>14.2} {:>13.1}% {:>16.2}",
            method.name(),
            mae(&fp, &ft),
            mrae(&bp, &bt) * 100.0,
            mae(&jp, &jt),
        );
    }
    println!(
        "\nThe headline result: IP/UDP ML tracks RTP ML despite never \
         reading an application header."
    );
}
