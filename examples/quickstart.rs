//! Quickstart: simulate one Teams call over an emulated access link,
//! estimate its per-second QoE with the IP/UDP Heuristic, and compare
//! against ground truth — the paper's core loop in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vcaml_suite::datasets::to_core_trace;
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{estimate_windows, HeuristicParams, IpUdpHeuristic, MediaClassifier};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    // 1. A 30-second Teams call over NDT-like emulated network conditions.
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(42, 30),
        duration_secs: 30,
        seed: 42,
        link: LinkConfig::default(),
    })
    .run();
    let trace = to_core_trace(&session, profile.payload_map);
    println!(
        "captured {} packets over {} s",
        trace.packets.len(),
        trace.duration_secs
    );

    // 2. Media classification from packet sizes alone (no RTP access).
    let classifier = MediaClassifier::default();
    let video: Vec<_> = trace
        .packets
        .iter()
        .filter(|p| classifier.is_video(p))
        .map(|p| (p.ts, p.size))
        .collect();
    println!("{} packets classified as video", video.len());

    // 3. Frame-boundary detection from packet sizes (Algorithm 1).
    let heuristic = IpUdpHeuristic::new(HeuristicParams::paper(VcaKind::Teams));
    let (frames, _) = heuristic.assemble(&video);
    println!("reconstructed {} video frames", frames.len());

    // 4. Per-second QoE estimates vs ground truth.
    let est = estimate_windows(&frames, trace.duration_secs as usize, 1);
    println!("\n  t   est FPS  true FPS  est kbps  true kbps");
    let mut abs_err = 0.0;
    for truth in &trace.truth {
        let e = est[truth.second as usize];
        abs_err += (e.fps - truth.fps).abs();
        println!(
            "{:>3}   {:>7.1}  {:>8.1}  {:>8.0}  {:>9.0}",
            truth.second, e.fps, truth.fps, e.bitrate_kbps, truth.bitrate_kbps
        );
    }
    println!(
        "\nframe rate MAE: {:.2} FPS",
        abs_err / trace.truth.len() as f64
    );
}
