//! Quickstart: simulate one Teams call, replay its captured packets
//! through a spawned `MonitorRunner`, and compare the per-second QoE
//! events against ground truth — the paper's core loop through the
//! public I/O layer (source → monitor → event bus) with the run
//! supervised in the background and observed through a `MonitorHandle`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    ChannelSink, EstimationMethod, Method, MonitorBuilder, MonitorRunner, ReplaySource,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    // 1. A 30-second Teams call over NDT-like emulated network conditions,
    //    materialized as captured UDP datagrams — what a tap would hand us.
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(42, 30),
        duration_secs: 30,
        seed: 42,
        link: LinkConfig::default(),
    })
    .run();
    let captured = session.to_captured();
    println!("captured {} packets over 30 s", captured.len());

    // 2. The whole pipeline behind one typed I/O layer: the capture is a
    //    `ReplaySource`, the monitor does packet-size media
    //    classification, Algorithm-1 frame reconstruction, and per-second
    //    QoE estimation (no application headers consumed), and a
    //    bounded `ChannelSink` subscribes to the typed events (shared
    //    `Arc`s — fan-out never copies). `threads(2)` runs the
    //    flow engines on shard workers behind bounded channels — on a
    //    one-call feed it only demonstrates the knob, but the same
    //    builder line scales a mixed tap across cores (see the
    //    operator_monitor example, which also fans ingest across
    //    multiple sources).
    let (subscriber, rx) = ChannelSink::bounded(1 << 16);
    let running = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2),
    )
    .source(ReplaySource::from_captured(captured))
    .sink(subscriber)
    .spawn();
    // The run is supervised in the background; the handle observes it
    // live (and could force_flush, evict flows, or stop it early).
    let handle = running.handle();
    let report = running.join();
    println!(
        "runner: {} packets in, {} events out, {} flows live at the end",
        report.stats.packets,
        report.events,
        handle.stats_snapshot().flows_live
    );

    // 3. Per-second estimates vs ground truth, straight off the events.
    println!("\n  t   est FPS  true FPS  est kbps  true kbps");
    let mut abs_err = 0.0;
    let mut n = 0usize;
    for event in rx.try_iter() {
        for r in event.final_reports() {
            let e = r.estimate.expect("heuristic reports carry estimates");
            let Some(truth) = session.truth.get(r.window as usize) else {
                continue;
            };
            abs_err += (e.fps - truth.fps).abs();
            n += 1;
            println!(
                "{:>3}   {:>7.1}  {:>8.1}  {:>8.0}  {:>9.0}",
                r.window, e.fps, truth.fps, e.bitrate_kbps, truth.bitrate_kbps
            );
        }
    }
    println!("\nframe rate MAE: {:.2} FPS", abs_err / n.max(1) as f64);
}
