//! Streaming estimation (paper §7 "system considerations"): process a
//! live packet feed one packet at a time with bounded memory, emitting a
//! QoE event at every window boundary — the deployment shape a network
//! operator actually needs, driven entirely through the `vcaml` I/O
//! layer: a `ReplaySource` feeds each spawned `MonitorRunner`, a
//! `ChannelSink` subscribes to its event stream (shared `Arc` events —
//! subscribing never copies).
//!
//! Two monitors run side by side on the same raw feed: the IP/UDP
//! Heuristic (frame reconstruction) and IP/UDP ML (incremental features +
//! a random-forest model trained offline).
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use std::collections::BTreeMap;
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::mlcore::{Dataset, RandomForest, Task};
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::netpkt::CapturedPacket;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    build_samples, ChannelSink, EstimationMethod, Method, MonitorBuilder, MonitorRunner,
    PipelineOpts, ReplaySource, WindowReport,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

/// Runs one monitor over the feed and collects its finalized windows.
fn run_method(
    vca: VcaKind,
    method: Method,
    model: Option<RandomForest>,
    feed: Vec<CapturedPacket>,
) -> BTreeMap<u64, WindowReport> {
    let mut builder = MonitorBuilder::new(vca).method(EstimationMethod::Fixed(method));
    if let Some(model) = model {
        builder = builder.model(model);
    }
    // A bounded channel subscriber: the receiver could live on another
    // thread (a dashboard, a log shipper); here we drain it after the
    // run. Its capacity is the subscriber's backpressure.
    let (subscriber, rx) = ChannelSink::bounded(65_536);
    MonitorRunner::new(builder)
        .source(ReplaySource::from_captured(feed))
        .sink(subscriber)
        .spawn()
        .join();
    let mut out = BTreeMap::new();
    for event in rx.try_iter() {
        for report in event.final_reports() {
            out.insert(report.window, report.clone());
        }
    }
    out
}

fn main() {
    let vca = VcaKind::Webex;
    let opts = PipelineOpts::paper(vca);

    // Train a frame-rate model offline (once).
    println!("training model...");
    let lab = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 8,
            min_secs: 25,
            max_secs: 35,
            seed: 2,
        },
    );
    let set = build_samples(&lab, &opts);
    let mut train = Dataset::new(set.ipudp_names.clone());
    for s in &set.samples {
        train.push(&s.ipudp_features, s.truth.fps);
    }
    let model = RandomForest::fit(&train, Task::Regression, &opts.forest);

    // "Live" feed: a fresh call, consumed packet by packet from raw
    // captured datagrams.
    let profile = VcaProfile::lab(vca);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(77, 25),
        duration_secs: 25,
        seed: 77,
        link: LinkConfig::default(),
    })
    .run();
    let captured = session.to_captured();

    let heur_windows = run_method(vca, Method::IpUdpHeuristic, None, captured.clone());
    let ml_windows = run_method(vca, Method::IpUdpMl, Some(model), captured);

    println!("\n  t   heuristic FPS  model FPS  true FPS  kbps");
    for (w, h) in &heur_windows {
        let est = h.estimate.expect("heuristic reports carry estimates");
        let model_fps = ml_windows
            .get(w)
            .and_then(|m| m.model_fps)
            .unwrap_or(f64::NAN);
        let truth = session.truth.get(*w as usize).map_or(f64::NAN, |t| t.fps);
        println!(
            "{:>3}   {:>13.1}  {:>9.1}  {:>8.1}  {:>5.0}",
            w, est.fps, model_fps, truth, est.bitrate_kbps,
        );
    }
    println!(
        "\nstate is O(window) per flow: no trace is ever buffered — the same \
         monitor demuxes a whole access network's flows by 5-tuple."
    );
}
