//! Streaming estimation (paper §7 "system considerations"): process a
//! live packet feed one packet at a time with bounded memory, emitting a
//! QoE report at every window boundary — the deployment shape a network
//! operator actually needs.
//!
//! Two engines of the unified `QoeEstimator` trait run side by side on the
//! same feed: the IP/UDP Heuristic (frame reconstruction) and IP/UDP ML
//! (incremental features + a random-forest model trained offline).
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use vcaml_suite::datasets::{inlab_corpus, to_core_trace, CorpusConfig};
use vcaml_suite::mlcore::{Dataset, RandomForest, Task};
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    build_samples, EngineConfig, IpUdpHeuristicEngine, IpUdpMlEngine, PipelineOpts, QoeEstimator,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    let vca = VcaKind::Webex;
    let opts = PipelineOpts::paper(vca);

    // Train a frame-rate model offline (once).
    println!("training model...");
    let lab = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 8,
            min_secs: 25,
            max_secs: 35,
            seed: 2,
        },
    );
    let set = build_samples(&lab, &opts);
    let mut train = Dataset::new(set.ipudp_names.clone());
    for s in &set.samples {
        train.push(&s.ipudp_features, s.truth.fps);
    }
    let model = RandomForest::fit(&train, Task::Regression, &opts.forest);

    // "Live" feed: a fresh call, consumed packet by packet.
    let profile = VcaProfile::lab(vca);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(77, 25),
        duration_secs: 25,
        seed: 77,
        link: LinkConfig::default(),
    })
    .run();
    let trace = to_core_trace(&session, profile.payload_map);

    let config = EngineConfig::paper(vca);
    let mut heur = IpUdpHeuristicEngine::new(config);
    let mut ml = IpUdpMlEngine::new(config).with_model(model);

    println!("\n  t   heuristic FPS  model FPS  true FPS  kbps");
    let mut heur_reports = Vec::new();
    let mut ml_reports = Vec::new();
    for p in &trace.packets {
        heur_reports.extend(heur.push(p));
        ml_reports.extend(ml.push(p));
    }
    heur_reports.extend(heur.finish());
    ml_reports.extend(ml.finish());

    for (h, m) in heur_reports.iter().zip(&ml_reports) {
        let est = h.estimate.expect("heuristic engine reports estimates");
        let truth = trace
            .truth
            .get(h.window as usize)
            .map_or(f64::NAN, |t| t.fps);
        println!(
            "{:>3}   {:>13.1}  {:>9.1}  {:>8.1}  {:>5.0}",
            h.window,
            est.fps,
            m.model_fps.unwrap_or(f64::NAN),
            truth,
            est.bitrate_kbps,
        );
    }
    println!(
        "\nstate is O(window) per flow: no trace is ever buffered — drop these \
         engines into a FlowTable to monitor a whole access network."
    );
}
