//! Streaming estimation (paper §7 "system considerations"): process a
//! live packet feed one packet at a time with bounded memory, emitting a
//! QoE report at every window boundary — the deployment shape a network
//! operator actually needs.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::mlcore::{Dataset, RandomForest, Task};
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    build_samples, HeuristicParams, MediaClassifier, PipelineOpts, StreamingEstimator,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn main() {
    let vca = VcaKind::Webex;
    let opts = PipelineOpts::paper(vca);

    // Train a frame-rate model offline (once).
    println!("training model...");
    let lab = inlab_corpus(vca, &CorpusConfig { n_calls: 8, min_secs: 25, max_secs: 35, seed: 2 });
    let set = build_samples(&lab, &opts);
    let mut train = Dataset::new(set.ipudp_names.clone());
    for s in &set.samples {
        train.push(&s.ipudp_features, s.truth.fps);
    }
    let model = RandomForest::fit(&train, Task::Regression, &opts.forest);

    // "Live" feed: a fresh call, consumed packet by packet.
    let profile = VcaProfile::lab(vca);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(77, 25),
        duration_secs: 25,
        seed: 77,
        link: LinkConfig::default(),
    })
    .run();

    let mut estimator = StreamingEstimator::new(
        MediaClassifier::new(opts.vmin),
        HeuristicParams::paper(vca),
        1,
        opts.theta_iat_us,
    )
    .with_model(model);

    println!("\n  t   heuristic FPS  model FPS  true FPS  kbps");
    let mut reports = Vec::new();
    for p in &session.packets {
        reports.extend(estimator.push(p.arrival_ts, p.ip_total_len));
    }
    reports.push(estimator.finish());
    for r in &reports {
        let truth = session
            .truth
            .get(r.window as usize)
            .map_or(f64::NAN, |t| t.fps);
        println!(
            "{:>3}   {:>13.1}  {:>9.1}  {:>8.1}  {:>5.0}",
            r.window,
            r.heuristic.fps,
            r.model_fps.unwrap_or(f64::NAN),
            truth,
            r.heuristic.bitrate_kbps,
        );
    }
    println!(
        "\nstate is O(window): no trace is ever buffered — this loop can run \
         per-flow on a monitoring box."
    );
}
